package proto

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"testing/quick"

	"shieldstore/internal/mem"
	"shieldstore/internal/sgx"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []*Request{
		{Cmd: CmdGet, Key: []byte("k")},
		{Cmd: CmdSet, Key: []byte("key"), Value: []byte("value")},
		{Cmd: CmdDelete, Key: []byte("key")},
		{Cmd: CmdAppend, Key: []byte("k"), Value: []byte("suffix")},
		{Cmd: CmdIncr, Key: []byte("ctr"), Delta: -42},
		{Cmd: CmdPing},
	}
	for _, r := range cases {
		got, err := DecodeRequest(EncodeRequest(r))
		if err != nil {
			t.Fatalf("%v: %v", r.Cmd, err)
		}
		if got.Cmd != r.Cmd || !bytes.Equal(got.Key, r.Key) ||
			!bytes.Equal(got.Value, r.Value) || got.Delta != r.Delta {
			t.Fatalf("round trip: %+v != %+v", got, r)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []*Response{
		{Status: StatusOK, Value: []byte("v")},
		{Status: StatusNotFound},
		{Status: StatusIntegrityViolation},
		{Status: StatusOK, Num: 1234567},
	}
	for _, r := range cases {
		got, err := DecodeResponse(EncodeResponse(r))
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != r.Status || !bytes.Equal(got.Value, r.Value) || got.Num != r.Num {
			t.Fatalf("round trip: %+v != %+v", got, r)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	if _, err := DecodeRequest([]byte{1, 2, 3}); !errors.Is(err, ErrBadMessage) {
		t.Fatal("short request accepted")
	}
	// Inconsistent lengths.
	r := EncodeRequest(&Request{Cmd: CmdSet, Key: []byte("abc"), Value: []byte("d")})
	if _, err := DecodeRequest(r[:len(r)-1]); !errors.Is(err, ErrBadMessage) {
		t.Fatal("truncated request accepted")
	}
	if _, err := DecodeResponse([]byte{0}); !errors.Is(err, ErrBadMessage) {
		t.Fatal("short response accepted")
	}
	resp := EncodeResponse(&Response{Status: StatusOK, Value: []byte("xy")})
	if _, err := DecodeResponse(append(resp, 0)); !errors.Is(err, ErrBadMessage) {
		t.Fatal("oversized response accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, []byte("a"), bytes.Repeat([]byte{7}, 10000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatal("frame mismatch")
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	big := make([]byte, MaxFrame+1)
	if err := WriteFrame(&buf, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatal("oversized frame written")
	}
	// Forged oversized header on read.
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatal("oversized frame header accepted")
	}
}

func newTestEnclave(meas byte) *sgx.Enclave {
	space := mem.NewSpace(mem.Config{EPCBytes: 1 << 20})
	return sgx.New(sgx.Config{Space: space, Seed: 21, Measurement: [32]byte{meas}})
}

// handshakePair runs both sides of the handshake over an in-memory pipe.
func handshakePair(t *testing.T, enclave *sgx.Enclave, expect [32]byte) (*Channel, *Channel, error) {
	t.Helper()
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()

	type result struct {
		ch  *Channel
		err error
	}
	srvCh := make(chan result, 1)
	go func() {
		ch, err := ServerHandshake(c2, enclave, entropy(enclave))
		srvCh <- result{ch, err}
	}()
	cli, cliErr := ClientHandshake(c1, enclave, expect)
	srv := <-srvCh
	if cliErr != nil {
		return nil, nil, cliErr
	}
	if srv.err != nil {
		return nil, nil, srv.err
	}
	return cli, srv.ch, nil
}

// entropy adapts the enclave DRBG to io.Reader.
type drbgReader struct{ e *sgx.Enclave }

func (r drbgReader) Read(p []byte) (int, error) {
	r.e.ReadRand(nil, p)
	return len(p), nil
}

func entropy(e *sgx.Enclave) drbgReader { return drbgReader{e} }

func TestHandshakeAndSecureExchange(t *testing.T) {
	e := newTestEnclave(7)
	cli, srv, err := handshakePair(t, e, e.Measurement())
	if err != nil {
		t.Fatal(err)
	}

	// Client -> server.
	req := EncodeRequest(&Request{Cmd: CmdSet, Key: []byte("session-key-0001"), Value: []byte("session-value-01")})
	ct := cli.Seal(req)
	if bytes.Contains(ct, []byte("session-key-0001")) || bytes.Contains(ct, []byte("session-value-01")) {
		t.Fatal("ciphertext leaks request")
	}
	pt, err := srv.Open(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, req) {
		t.Fatal("request mismatch")
	}
	// Server -> client.
	resp := EncodeResponse(&Response{Status: StatusOK})
	pt2, err := cli.Open(srv.Seal(resp))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt2, resp) {
		t.Fatal("response mismatch")
	}
}

func TestHandshakeRejectsWrongMeasurement(t *testing.T) {
	e := newTestEnclave(7)
	var wrong [32]byte
	wrong[0] = 99
	if _, _, err := handshakePair(t, e, wrong); !errors.Is(err, ErrHandshake) {
		t.Fatalf("wrong measurement accepted: %v", err)
	}
}

func TestChannelRejectsReplay(t *testing.T) {
	e := newTestEnclave(7)
	cli, srv, err := handshakePair(t, e, e.Measurement())
	if err != nil {
		t.Fatal(err)
	}
	msg := cli.Seal([]byte("once"))
	if _, err := srv.Open(msg); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Open(msg); !errors.Is(err, ErrReplay) {
		t.Fatal("replayed frame accepted")
	}
}

func TestChannelRejectsReorder(t *testing.T) {
	e := newTestEnclave(7)
	cli, srv, err := handshakePair(t, e, e.Measurement())
	if err != nil {
		t.Fatal(err)
	}
	m1 := cli.Seal([]byte("first"))
	m2 := cli.Seal([]byte("second"))
	if _, err := srv.Open(m2); !errors.Is(err, ErrReplay) {
		t.Fatal("out-of-order frame accepted")
	}
	if _, err := srv.Open(m1); err != nil {
		t.Fatal(err)
	}
}

func TestChannelRejectsTampering(t *testing.T) {
	e := newTestEnclave(7)
	cli, srv, err := handshakePair(t, e, e.Measurement())
	if err != nil {
		t.Fatal(err)
	}
	ct := cli.Seal([]byte("payload"))
	ct[0] ^= 1
	if _, err := srv.Open(ct); err == nil {
		t.Fatal("tampered frame accepted")
	}
}

func TestChannelDirectionsIndependent(t *testing.T) {
	// A frame sealed by the client must not open as a server frame
	// (direction confusion / reflection attack).
	e := newTestEnclave(7)
	cli, _, err := handshakePair(t, e, e.Measurement())
	if err != nil {
		t.Fatal(err)
	}
	ct := cli.Seal([]byte("hello"))
	if _, err := cli.Open(ct); err == nil {
		t.Fatal("reflected frame accepted")
	}
}

// Property: request encoding round-trips arbitrary keys and values.
func TestRequestEncodingProperty(t *testing.T) {
	f := func(cmd uint8, key, val []byte, delta int64) bool {
		r := &Request{Cmd: Command(cmd), Key: key, Value: val, Delta: delta}
		got, err := DecodeRequest(EncodeRequest(r))
		if err != nil {
			return false
		}
		return got.Cmd == r.Cmd && bytes.Equal(got.Key, key) &&
			bytes.Equal(got.Value, val) && got.Delta == delta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestListRoundTrip(t *testing.T) {
	cases := [][][]byte{
		{},
		{[]byte("a")},
		{[]byte("a"), nil, []byte(""), []byte("ccc")},
		{nil, nil},
	}
	for i, items := range cases {
		got, err := DecodeList(EncodeList(items))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(got) != len(items) {
			t.Fatalf("case %d: %d items, want %d", i, len(got), len(items))
		}
		for j := range items {
			switch {
			case items[j] == nil && got[j] != nil:
				t.Fatalf("case %d item %d: nil lost", i, j)
			case items[j] != nil && !bytes.Equal(got[j], items[j]):
				t.Fatalf("case %d item %d: %q != %q", i, j, got[j], items[j])
			}
		}
	}
}

func TestDecodeListRejectsMalformed(t *testing.T) {
	for _, bad := range [][]byte{
		{},
		{1, 0, 0, 0},                         // claims 1 item, no data
		{1, 0, 0, 0, 5, 0, 0, 0, 'a'},        // item length exceeds buffer
		append(EncodeList([][]byte{{1}}), 0), // trailing garbage
		{0xFF, 0xFF, 0xFF, 0x7F},             // absurd count
	} {
		if _, err := DecodeList(bad); !errors.Is(err, ErrBadMessage) {
			t.Errorf("malformed list %v accepted", bad)
		}
	}
}

// Property: list encoding round-trips arbitrary inputs.
func TestListProperty(t *testing.T) {
	f := func(items [][]byte) bool {
		got, err := DecodeList(EncodeList(items))
		if err != nil || len(got) != len(items) {
			return false
		}
		for i := range items {
			if !bytes.Equal(got[i], items[i]) && !(len(got[i]) == 0 && len(items[i]) == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
