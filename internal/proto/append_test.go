package proto

import (
	"bytes"
	"testing"
)

// The append-style encoders must produce byte-identical wire images to
// their allocating counterparts — the pipelined server and client reuse
// scratch buffers through them.

func TestAppendRequestMatchesEncode(t *testing.T) {
	reqs := []Request{
		{Cmd: CmdGet, Key: []byte("k")},
		{Cmd: CmdSet, Key: []byte("key"), Value: []byte("value")},
		{Cmd: CmdIncr, Key: []byte("n"), Delta: -42},
		{Cmd: CmdPing},
	}
	scratch := make([]byte, 0, 8)
	for i := range reqs {
		want := EncodeRequest(&reqs[i])
		scratch = AppendRequest(scratch[:0], &reqs[i])
		if !bytes.Equal(scratch, want) {
			t.Fatalf("req %d: append %x != encode %x", i, scratch, want)
		}
	}
}

func TestAppendResponseMatchesEncode(t *testing.T) {
	resps := []Response{
		{Status: StatusOK, Value: []byte("payload")},
		{Status: StatusNotFound},
		{Status: StatusOK, Num: -7},
	}
	scratch := make([]byte, 0, 8)
	for i := range resps {
		want := EncodeResponse(&resps[i])
		scratch = AppendResponse(scratch[:0], &resps[i])
		if !bytes.Equal(scratch, want) {
			t.Fatalf("resp %d: append %x != encode %x", i, scratch, want)
		}
	}
}

func TestAppendListMatchesEncode(t *testing.T) {
	items := [][]byte{[]byte("a"), nil, []byte(""), []byte("longer-item")}
	want := EncodeList(items)
	got := AppendList(make([]byte, 0, 4), items)
	if !bytes.Equal(got, want) {
		t.Fatalf("append %x != encode %x", got, want)
	}
	back, err := DecodeList(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(items) {
		t.Fatalf("decoded %d items, want %d", len(back), len(items))
	}
	if back[1] != nil {
		t.Fatal("nil marker lost")
	}
}

func TestAppendBatchResultsMatchesEncode(t *testing.T) {
	rs := []BatchResult{
		{Status: StatusOK, Value: []byte("v")},
		{Status: StatusNotFound},            // nil value marker
		{Status: StatusOK, Value: []byte{}}, // empty stays distinct from nil
		{Status: StatusOK, Num: 99},
	}
	want := EncodeBatchResults(rs)
	got := AppendBatchResults(make([]byte, 0, 4), rs)
	if !bytes.Equal(got, want) {
		t.Fatalf("append %x != encode %x", got, want)
	}
	back, err := DecodeBatchResults(got)
	if err != nil {
		t.Fatal(err)
	}
	if back[1].Value != nil || back[2].Value == nil {
		t.Fatal("nil/empty distinction lost")
	}
}

func TestDecodeBatchViewAliasesBuffer(t *testing.T) {
	ops := []BatchOp{
		{Cmd: CmdSet, Key: []byte("alpha"), Value: []byte("beta")},
		{Cmd: CmdGet, Key: []byte("gamma")},
		{Cmd: CmdIncr, Key: []byte("n"), Delta: 3},
	}
	buf, err := EncodeBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	view, err := DecodeBatchView(buf)
	if err != nil {
		t.Fatal(err)
	}
	full, err := DecodeBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		if !bytes.Equal(view[i].Key, full[i].Key) || !bytes.Equal(view[i].Value, full[i].Value) {
			t.Fatalf("op %d: view differs from copy decode", i)
		}
	}
	// The view must alias the buffer: mutating the frame shows through.
	buf[4+17] ^= 0xFF // first byte of op 0's key
	if bytes.Equal(view[0].Key, full[0].Key) {
		t.Fatal("view did not alias the frame buffer")
	}
}

func TestDecodeBatchViewRejectsMalformed(t *testing.T) {
	ops := []BatchOp{{Cmd: CmdSet, Key: []byte("k"), Value: []byte("v")}}
	buf, err := EncodeBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]byte{
		nil,
		buf[:3],                             // truncated count
		buf[:len(buf)-1],                    // truncated value
		append(append([]byte{}, buf...), 0), // trailing byte
	} {
		if _, err := DecodeBatchView(bad); err == nil {
			t.Fatalf("malformed batch %x accepted", bad)
		}
	}
}

func TestReadFrameIntoReusesBuffer(t *testing.T) {
	var wire bytes.Buffer
	if err := WriteFrame(&wire, []byte("first-frame")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&wire, []byte("2nd")); err != nil {
		t.Fatal(err)
	}
	buf, err := ReadFrameInto(&wire, make([]byte, 0, 64))
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != "first-frame" {
		t.Fatalf("frame 1 = %q", buf)
	}
	p0 := &buf[:1][0]
	buf, err = ReadFrameInto(&wire, buf[:0])
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != "2nd" {
		t.Fatalf("frame 2 = %q", buf)
	}
	if &buf[:1][0] != p0 {
		t.Fatal("second read did not reuse the buffer backing")
	}
}

func TestSealToOpenInPlaceInterop(t *testing.T) {
	e := newTestEnclave(9)
	cli, srv, err := handshakePair(t, e, e.Measurement())
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]byte, 0, 16)
	for i, msg := range []string{"one", "a somewhat longer message", ""} {
		scratch = cli.SealTo(scratch[:0], []byte(msg))
		ct := append([]byte(nil), scratch...) // simulate the wire copy
		plain, err := srv.OpenInPlace(ct)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if string(plain) != msg {
			t.Fatalf("msg %d: got %q want %q", i, plain, msg)
		}
	}
	// SealTo/Seal and Open/OpenInPlace share one nonce sequence: a plain
	// Seal after SealTo must still open.
	ct := cli.Seal([]byte("mixed"))
	plain, err := srv.Open(ct)
	if err != nil {
		t.Fatal(err)
	}
	if string(plain) != "mixed" {
		t.Fatalf("got %q", plain)
	}
}

func TestDecodeRequestIntoAliasesBuffer(t *testing.T) {
	req := Request{Cmd: CmdSet, Key: []byte("key"), Value: []byte("val")}
	buf := EncodeRequest(&req)
	var view Request
	if err := DecodeRequestInto(&view, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(view.Key, req.Key) || !bytes.Equal(view.Value, req.Value) {
		t.Fatal("view decode mismatch")
	}
	buf[len(buf)-1] ^= 0xFF
	if bytes.Equal(view.Value, req.Value) {
		t.Fatal("DecodeRequestInto did not alias the buffer")
	}
}
