// Batch frame encoding: one CmdBatch request carries N heterogeneous
// operations and its response carries N per-op results, so a pipelined
// client pays one network round trip — and the server one enclave
// transition — per batch instead of per key.
//
// A batch op reuses the single-request layout (cmd, key, value, delta),
// making a batch literally a vector of mini-requests; results mirror the
// single-response layout with a 0xFFFFFFFF length marking a nil value
// (the same "missing" marker EncodeList uses).
package proto

import (
	"encoding/binary"
	"errors"
)

// MaxBatchOps bounds the operations of a single batch frame. It is far
// below what MaxFrame admits for empty-payload ops, keeping a hostile
// count field from driving a huge allocation.
const MaxBatchOps = 1 << 16

// ErrBatchTooLarge reports a batch whose op count exceeds MaxBatchOps.
var ErrBatchTooLarge = errors.New("proto: batch exceeds op limit")

// BatchOp is one operation of a CmdBatch request. Cmd must be one of
// CmdGet, CmdSet, CmdDelete, CmdAppend, CmdIncr; Value carries the Set
// value or Append suffix, Delta the Incr amount.
type BatchOp struct {
	Cmd   Command
	Key   []byte
	Value []byte
	Delta int64
}

// BatchResult is one per-op outcome of a CmdBatch response. Value is nil
// for ops that produce no value (and for misses).
type BatchResult struct {
	Status uint8
	Num    int64
	Value  []byte
}

// EncodeBatch renders a batch payload:
// n(4) then n x (cmd(1) keyLen(4) valLen(4) delta(8) key val).
func EncodeBatch(ops []BatchOp) ([]byte, error) {
	if len(ops) > MaxBatchOps {
		return nil, ErrBatchTooLarge
	}
	size := 4
	for i := range ops {
		size += 17 + len(ops[i].Key) + len(ops[i].Value)
	}
	buf := make([]byte, 4, size)
	binary.LittleEndian.PutUint32(buf, uint32(len(ops)))
	var hdr [17]byte
	for i := range ops {
		op := &ops[i]
		hdr[0] = byte(op.Cmd)
		binary.LittleEndian.PutUint32(hdr[1:], uint32(len(op.Key)))
		binary.LittleEndian.PutUint32(hdr[5:], uint32(len(op.Value)))
		binary.LittleEndian.PutUint64(hdr[9:], uint64(op.Delta))
		buf = append(buf, hdr[:]...)
		buf = append(buf, op.Key...)
		buf = append(buf, op.Value...)
	}
	return buf, nil
}

// DecodeBatchView parses an EncodeBatch payload without copying: every
// op's Key and Value alias buf, so they are valid only while the caller
// keeps the frame buffer alive and unmodified. Validation is identical to
// DecodeBatch.
//
//ss:attacker — parses adversary-controlled bytes.
func DecodeBatchView(buf []byte) ([]BatchOp, error) {
	if len(buf) < 4 {
		return nil, ErrBadMessage
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if n < 0 || n > MaxBatchOps {
		return nil, ErrBadMessage
	}
	off := 4
	ops := make([]BatchOp, 0, n)
	for i := 0; i < n; i++ {
		if off+17 > len(buf) {
			return nil, ErrBadMessage
		}
		kl := int(binary.LittleEndian.Uint32(buf[off+1:]))
		vl := int(binary.LittleEndian.Uint32(buf[off+5:]))
		op := BatchOp{
			Cmd:   Command(buf[off]),
			Delta: int64(binary.LittleEndian.Uint64(buf[off+9:])),
		}
		off += 17
		if kl < 0 || vl < 0 || off+kl+vl > len(buf) {
			return nil, ErrBadMessage
		}
		if kl > 0 {
			op.Key = buf[off : off+kl]
		}
		off += kl
		if vl > 0 {
			op.Value = buf[off : off+vl]
		}
		off += vl
		ops = append(ops, op)
	}
	if off != len(buf) {
		return nil, ErrBadMessage
	}
	return ops, nil
}

// DecodeBatch parses an EncodeBatch payload. The count and every length
// field are validated against the buffer; trailing bytes are rejected.
//
//ss:attacker — parses adversary-controlled bytes.
func DecodeBatch(buf []byte) ([]BatchOp, error) {
	if len(buf) < 4 {
		return nil, ErrBadMessage
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if n < 0 || n > MaxBatchOps {
		return nil, ErrBadMessage
	}
	off := 4
	ops := make([]BatchOp, 0, n)
	for i := 0; i < n; i++ {
		if off+17 > len(buf) {
			return nil, ErrBadMessage
		}
		kl := int(binary.LittleEndian.Uint32(buf[off+1:]))
		vl := int(binary.LittleEndian.Uint32(buf[off+5:]))
		op := BatchOp{
			Cmd:   Command(buf[off]),
			Delta: int64(binary.LittleEndian.Uint64(buf[off+9:])),
		}
		off += 17
		if kl < 0 || vl < 0 || off+kl+vl > len(buf) {
			return nil, ErrBadMessage
		}
		if kl > 0 {
			op.Key = append([]byte(nil), buf[off:off+kl]...)
		}
		off += kl
		if vl > 0 {
			op.Value = append([]byte(nil), buf[off:off+vl]...)
		}
		off += vl
		ops = append(ops, op)
	}
	if off != len(buf) {
		return nil, ErrBadMessage
	}
	return ops, nil
}

// AppendBatchResults appends a batch response payload to dst:
// n(4) then n x (status(1) num(8) valLen(4) val), valLen 0xFFFFFFFF
// marking a nil value.
func AppendBatchResults(dst []byte, rs []BatchResult) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(rs)))
	dst = append(dst, tmp[:]...)
	var hdr [13]byte
	for i := range rs {
		r := &rs[i]
		hdr[0] = r.Status
		binary.LittleEndian.PutUint64(hdr[1:], uint64(r.Num))
		if r.Value == nil {
			binary.LittleEndian.PutUint32(hdr[9:], 0xFFFFFFFF)
			dst = append(dst, hdr[:]...)
			continue
		}
		binary.LittleEndian.PutUint32(hdr[9:], uint32(len(r.Value)))
		dst = append(dst, hdr[:]...)
		dst = append(dst, r.Value...)
	}
	return dst
}

// EncodeBatchResults renders a batch response payload into a fresh
// buffer.
func EncodeBatchResults(rs []BatchResult) []byte {
	size := 4 + 13*len(rs)
	for i := range rs {
		size += len(rs[i].Value)
	}
	return AppendBatchResults(make([]byte, 0, size), rs)
}

// DecodeBatchResults parses an EncodeBatchResults payload.
//
//ss:attacker — parses adversary-controlled bytes.
func DecodeBatchResults(buf []byte) ([]BatchResult, error) {
	if len(buf) < 4 {
		return nil, ErrBadMessage
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if n < 0 || n > MaxBatchOps {
		return nil, ErrBadMessage
	}
	off := 4
	rs := make([]BatchResult, 0, n)
	for i := 0; i < n; i++ {
		if off+13 > len(buf) {
			return nil, ErrBadMessage
		}
		r := BatchResult{
			Status: buf[off],
			Num:    int64(binary.LittleEndian.Uint64(buf[off+1:])),
		}
		vl := binary.LittleEndian.Uint32(buf[off+9:])
		off += 13
		if vl != 0xFFFFFFFF {
			if off+int(vl) > len(buf) {
				return nil, ErrBadMessage
			}
			// Keep empty distinct from the nil marker.
			r.Value = append(make([]byte, 0, vl), buf[off:off+int(vl)]...)
			off += int(vl)
		}
		rs = append(rs, r)
	}
	if off != len(buf) {
		return nil, ErrBadMessage
	}
	return rs, nil
}
