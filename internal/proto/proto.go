// Package proto implements ShieldStore's client/server wire protocol and
// the secure session establishment of §3.2:
//
//  1. the client remote-attests the server enclave (a quote over the
//     handshake transcript, checked against the expected measurement),
//  2. both sides run X25519 and derive an AES-GCM session key, and
//  3. every subsequent request/response travels encrypted and
//     authenticated with monotonically increasing nonces (no replay).
//
// Frames are length-prefixed; requests and responses use a compact binary
// encoding. A plaintext mode exists only for the paper's "without network
// security" ablation in §6.4.
package proto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Command identifies a request type.
type Command uint8

// Commands.
const (
	CmdGet Command = iota + 1
	CmdSet
	CmdDelete
	CmdAppend
	CmdIncr
	CmdPing
	CmdMGet
	CmdStats
	CmdBatch
	CmdHealth
	// CmdReplicate carries a batch of sealed replication frames from a
	// primary's journal shipper to its replica (internal/repl). The
	// response's Num is the replica's acked watermark (highest applied
	// frame sequence).
	CmdReplicate
	// CmdPromote promotes a replica to primary: Delta carries the new
	// fencing epoch; the response's Num echoes the resulting epoch.
	CmdPromote
	// CmdReplAttach instructs a node to (re)target its replication stream
	// at the replica endpoint named by Key — the control plane's
	// re-protection hook. The node creates a journal shipper if it has
	// none, schedules a full bootstrap at the new target, and starts
	// streaming. Rejected on nodes that cannot ship (an unpromoted
	// replica) with StatusError.
	CmdReplAttach
	// CmdTopology asks a control-plane supervisor for its current cluster
	// view: the response's Num is the topology version and Value is an
	// EncodeList of per-shard lines (see internal/ctl.Topology). Data
	// nodes do not answer it.
	CmdTopology
)

// Status codes.
const (
	StatusOK uint8 = iota
	StatusNotFound
	StatusError
	StatusIntegrityViolation
	// StatusRebuilding reports a partition that is quarantined but being
	// rebuilt online: the operation was not applied and is safe to retry
	// (any op, not just idempotent ones) after a short backoff.
	StatusRebuilding
	// StatusUnhealable reports a partition that is quarantined, whose
	// rebuild was refused because its op journal is incomplete (a journal
	// write failed and the log was detached): retrying will not help, an
	// operator (or a failover to a replica) must intervene.
	StatusUnhealable
	// StatusFenced reports a node that has been fenced out by a newer
	// replication epoch (a replica was promoted in its place): mutations
	// are rejected; clients must re-route to the current primary.
	StatusFenced
	// StatusReplGap is a CmdReplicate-only response: a prefix of the
	// shipped frames was applied (Num = acked watermark) and the stream
	// must resume from watermark+1 — the replica saw a sequence gap or a
	// transiently failing partition and refuses to apply out of order.
	StatusReplGap
)

// Errors.
var (
	ErrFrameTooLarge = errors.New("proto: frame exceeds limit")
	ErrBadMessage    = errors.New("proto: malformed message")
	ErrReplay        = errors.New("proto: bad sequence (replayed or dropped frame)")
	ErrHandshake     = errors.New("proto: handshake failed")
)

// MaxFrame bounds a single frame (64 MiB).
const MaxFrame = 64 << 20

// Request is a client command.
type Request struct {
	Cmd   Command
	Key   []byte
	Value []byte
	Delta int64
}

// Response is a server reply.
type Response struct {
	Status uint8
	Value  []byte
	Num    int64
}

// AppendRequest appends a request encoding to dst:
// cmd(1) keyLen(4) valLen(4) delta(8) key val.
func AppendRequest(dst []byte, r *Request) []byte {
	var hdr [17]byte
	hdr[0] = byte(r.Cmd)
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(r.Key)))
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(r.Value)))
	binary.LittleEndian.PutUint64(hdr[9:], uint64(r.Delta))
	dst = append(dst, hdr[:]...)
	dst = append(dst, r.Key...)
	return append(dst, r.Value...)
}

// EncodeRequest renders a request into a fresh buffer.
func EncodeRequest(r *Request) []byte {
	return AppendRequest(make([]byte, 0, 17+len(r.Key)+len(r.Value)), r)
}

// DecodeRequest parses an encoded request, copying key and value out of
// the frame buffer.
//
//ss:attacker — parses adversary-controlled bytes.
func DecodeRequest(buf []byte) (*Request, error) {
	r := &Request{}
	if err := DecodeRequestInto(r, buf); err != nil {
		return nil, err
	}
	if r.Key != nil {
		r.Key = append([]byte(nil), r.Key...)
	}
	if r.Value != nil {
		r.Value = append([]byte(nil), r.Value...)
	}
	return r, nil
}

// DecodeRequestInto parses an encoded request without copying: the
// resulting Key and Value alias buf, so they are valid only while the
// caller keeps the frame buffer alive and unmodified.
//
//ss:attacker — parses adversary-controlled bytes.
func DecodeRequestInto(r *Request, buf []byte) error {
	if len(buf) < 17 {
		return ErrBadMessage
	}
	kl := int(binary.LittleEndian.Uint32(buf[1:]))
	vl := int(binary.LittleEndian.Uint32(buf[5:]))
	if kl < 0 || vl < 0 || 17+kl+vl != len(buf) {
		return ErrBadMessage
	}
	r.Cmd = Command(buf[0])
	r.Delta = int64(binary.LittleEndian.Uint64(buf[9:]))
	r.Key, r.Value = nil, nil
	if kl > 0 {
		r.Key = buf[17 : 17+kl]
	}
	if vl > 0 {
		r.Value = buf[17+kl:]
	}
	return nil
}

// AppendResponse appends a response encoding to dst:
// status(1) num(8) valLen(4) val.
func AppendResponse(dst []byte, r *Response) []byte {
	var hdr [13]byte
	hdr[0] = r.Status
	binary.LittleEndian.PutUint64(hdr[1:], uint64(r.Num))
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(r.Value)))
	dst = append(dst, hdr[:]...)
	return append(dst, r.Value...)
}

// EncodeResponse renders a response into a fresh buffer.
func EncodeResponse(r *Response) []byte {
	return AppendResponse(make([]byte, 0, 13+len(r.Value)), r)
}

// DecodeResponse parses an encoded response.
//
//ss:attacker — parses adversary-controlled bytes.
func DecodeResponse(buf []byte) (*Response, error) {
	if len(buf) < 13 {
		return nil, ErrBadMessage
	}
	vl := int(binary.LittleEndian.Uint32(buf[9:]))
	if vl < 0 || 13+vl != len(buf) {
		return nil, ErrBadMessage
	}
	r := &Response{
		Status: buf[0],
		Num:    int64(binary.LittleEndian.Uint64(buf[1:])),
	}
	if vl > 0 {
		r.Value = append([]byte(nil), buf[13:]...)
	}
	return r, nil
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame into a fresh buffer.
//
//ss:attacker — parses adversary-controlled bytes.
func ReadFrame(r io.Reader) ([]byte, error) {
	return ReadFrameInto(r, nil)
}

// ReadFrameInto reads one length-prefixed frame into buf when its
// capacity suffices, allocating only when the frame is larger. With a
// pooled buffer this makes the server's frame reads allocation-free at
// steady state.
//
//ss:attacker — parses adversary-controlled bytes.
func ReadFrameInto(r io.Reader, buf []byte) ([]byte, error) {
	n, err := ReadFrameHeader(r)
	if err != nil {
		return nil, err
	}
	return ReadFramePayloadInto(r, n, buf)
}

// ReadFrameHeader reads a frame's 4-byte length prefix and validates the
// announced size. Split from ReadFramePayloadInto so callers can apply
// different I/O deadlines to "waiting for a request" (idle) and "reading
// a request that already started" (stall).
//
//ss:attacker — parses adversary-controlled bytes.
func ReadFrameHeader(r io.Reader) (int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > MaxFrame {
		return 0, ErrFrameTooLarge
	}
	return n, nil
}

// ReadFramePayloadInto reads the n-byte payload announced by
// ReadFrameHeader, reusing buf's capacity when it suffices.
//
//ss:attacker — parses adversary-controlled bytes.
func ReadFramePayloadInto(r io.Reader, n int, buf []byte) ([]byte, error) {
	if cap(buf) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Channel protects one direction-pair of a session. A nil *Channel means
// plaintext (the §6.4 no-network-security ablation).
//
// The send state (Seal/SealTo) and receive state (Open/OpenInPlace) are
// disjoint, so one goroutine may seal while another opens — the pipelined
// server's reader/writer split relies on this. Neither half is safe for
// use by two goroutines at once.
type Channel struct {
	aead      cipher.AEAD
	sendSeq   uint64
	recvSeq   uint64
	sendDir   byte
	recvDir   byte
	sendNonce [12]byte
	recvNonce [12]byte
}

// newChannel builds a channel from a 16-byte session key. The dir byte
// separates client→server and server→client nonce spaces.
func newChannel(key []byte, client bool) (*Channel, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	c := &Channel{aead: aead}
	if client {
		c.sendDir, c.recvDir = 1, 2
	} else {
		c.sendDir, c.recvDir = 2, 1
	}
	return c, nil
}

// Seal encrypts a payload with the next send nonce into a fresh buffer.
func (c *Channel) Seal(plain []byte) []byte {
	return c.SealTo(nil, plain)
}

// SealTo encrypts a payload with the next send nonce, appending the
// ciphertext to dst (which may share capacity with a pooled buffer).
func (c *Channel) SealTo(dst, plain []byte) []byte {
	c.sendNonce[0] = c.sendDir
	binary.LittleEndian.PutUint64(c.sendNonce[4:], c.sendSeq)
	c.sendSeq++
	return c.aead.Seal(dst, c.sendNonce[:], plain, nil)
}

// Open authenticates and decrypts the next received frame. Sequence
// numbers are implicit, so replayed, reordered or dropped frames fail.
//
//ss:attacker — parses adversary-controlled bytes.
func (c *Channel) Open(ct []byte) ([]byte, error) {
	c.recvNonce[0] = c.recvDir
	binary.LittleEndian.PutUint64(c.recvNonce[4:], c.recvSeq)
	pt, err := c.aead.Open(nil, c.recvNonce[:], ct, nil)
	if err != nil {
		return nil, ErrReplay
	}
	c.recvSeq++
	return pt, nil
}

// OpenInPlace is Open decrypting into ct's own backing array (GCM
// supports in-place opens), so a pooled frame buffer is both the
// ciphertext source and the plaintext destination. On error ct's contents
// are unspecified.
//
//ss:attacker — parses adversary-controlled bytes.
func (c *Channel) OpenInPlace(ct []byte) ([]byte, error) {
	c.recvNonce[0] = c.recvDir
	binary.LittleEndian.PutUint64(c.recvNonce[4:], c.recvSeq)
	pt, err := c.aead.Open(ct[:0], c.recvNonce[:], ct, nil)
	if err != nil {
		return nil, ErrReplay
	}
	c.recvSeq++
	return pt, nil
}

// Overhead returns the ciphertext expansion per frame.
func (c *Channel) Overhead() int { return c.aead.Overhead() }

// QuoteVerifier abstracts the attestation service: it validates a quote
// and returns the attested report data. *sgx.Enclave implements it.
type QuoteVerifier interface {
	VerifyQuote(quote []byte, expectMeasurement [32]byte) ([]byte, error)
}

// Quoter abstracts quote generation inside the server enclave.
type Quoter interface {
	Quote(reportData []byte) []byte
}

// handshake message layout: pub(32) nonce(16) for hello; quote for reply.

// ClientHandshake attests the server and derives the session channel,
// drawing client entropy from crypto/rand.
//
//ss:attacker — parses adversary-controlled bytes.
func ClientHandshake(rw io.ReadWriter, verifier QuoteVerifier, expect [32]byte) (*Channel, error) {
	return ClientHandshakeSeeded(rw, verifier, expect, rand.Reader)
}

// ClientHandshakeSeeded is ClientHandshake with caller-supplied entropy
// (deterministic tests and simulations).
//
//ss:attacker — parses adversary-controlled bytes.
func ClientHandshakeSeeded(rw io.ReadWriter, verifier QuoteVerifier, expect [32]byte, entropy io.Reader) (*Channel, error) {
	priv, err := ecdh.X25519().GenerateKey(entropy)
	if err != nil {
		return nil, err
	}
	return clientHandshakeWithKey(rw, verifier, expect, priv)
}

func clientHandshakeWithKey(rw io.ReadWriter, verifier QuoteVerifier, expect [32]byte, priv *ecdh.PrivateKey) (*Channel, error) {
	nonce := make([]byte, 16)
	// Derive the nonce from the public key: unique per session key.
	sum := sha256.Sum256(priv.PublicKey().Bytes())
	copy(nonce, sum[:16])

	hello := append(append([]byte{}, priv.PublicKey().Bytes()...), nonce...)
	if err := WriteFrame(rw, hello); err != nil {
		return nil, err
	}
	reply, err := ReadFrame(rw)
	if err != nil {
		return nil, err
	}
	if len(reply) < 32 {
		return nil, ErrHandshake
	}
	// Reply: serverPub(32) || quote(...)
	serverPubBytes := reply[:32]
	quote := reply[32:]
	report, err := verifier.VerifyQuote(quote, expect)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	// The quote must bind this session's transcript.
	want := transcript(hello, serverPubBytes)
	if !hmac.Equal(report, want) {
		return nil, fmt.Errorf("%w: transcript mismatch", ErrHandshake)
	}
	serverPub, err := ecdh.X25519().NewPublicKey(serverPubBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	shared, err := priv.ECDH(serverPub)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	return newChannel(sessionKey(shared, nonce), true)
}

// ServerHandshake answers a client hello, producing the server channel.
// entropy supplies the server's ephemeral key material (the enclave DRBG).
//
//ss:attacker — parses adversary-controlled bytes.
func ServerHandshake(rw io.ReadWriter, quoter Quoter, entropy io.Reader) (*Channel, error) {
	hello, err := ReadFrame(rw)
	if err != nil {
		return nil, err
	}
	if len(hello) != 48 {
		return nil, ErrHandshake
	}
	clientPub, err := ecdh.X25519().NewPublicKey(hello[:32])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	nonce := hello[32:48]

	priv, err := ecdh.X25519().GenerateKey(entropy)
	if err != nil {
		return nil, err
	}
	pub := priv.PublicKey().Bytes()
	quote := quoter.Quote(transcript(hello, pub))
	if err := WriteFrame(rw, append(append([]byte{}, pub...), quote...)); err != nil {
		return nil, err
	}
	shared, err := priv.ECDH(clientPub)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	return newChannel(sessionKey(shared, nonce), false)
}

// AppendList appends a list of byte strings to dst: n(4) then n x
// (len(4) bytes). A nil element is encoded with length 0xFFFFFFFF (MGet
// "missing" marker).
func AppendList(dst []byte, items [][]byte) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(items)))
	dst = append(dst, tmp[:]...)
	for _, it := range items {
		if it == nil {
			binary.LittleEndian.PutUint32(tmp[:], 0xFFFFFFFF)
			dst = append(dst, tmp[:]...)
			continue
		}
		binary.LittleEndian.PutUint32(tmp[:], uint32(len(it)))
		dst = append(dst, tmp[:]...)
		dst = append(dst, it...)
	}
	return dst
}

// EncodeList renders a list of byte strings into a fresh buffer.
func EncodeList(items [][]byte) []byte {
	size := 4
	for _, it := range items {
		size += 4 + len(it)
	}
	return AppendList(make([]byte, 0, size), items)
}

// DecodeList parses an EncodeList buffer.
//
//ss:attacker — parses adversary-controlled bytes.
func DecodeList(buf []byte) ([][]byte, error) {
	if len(buf) < 4 {
		return nil, ErrBadMessage
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if n < 0 || n > 1<<20 {
		return nil, ErrBadMessage
	}
	off := 4
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if off+4 > len(buf) {
			return nil, ErrBadMessage
		}
		l := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		if l == 0xFFFFFFFF {
			out = append(out, nil)
			continue
		}
		if off+int(l) > len(buf) {
			return nil, ErrBadMessage
		}
		out = append(out, append([]byte(nil), buf[off:off+int(l)]...))
		off += int(l)
	}
	if off != len(buf) {
		return nil, ErrBadMessage
	}
	return out, nil
}

// transcript binds both handshake flights into the attested report data.
func transcript(hello, serverPub []byte) []byte {
	h := sha256.New()
	h.Write([]byte("shieldstore-handshake-v1"))
	h.Write(hello)
	h.Write(serverPub)
	return h.Sum(nil)
}

// sessionKey derives the 16-byte AES key from the ECDH secret and nonce.
func sessionKey(shared, nonce []byte) []byte {
	mac := hmac.New(sha256.New, shared)
	mac.Write([]byte("shieldstore-session-v1"))
	mac.Write(nonce)
	return mac.Sum(nil)[:16]
}
