package proto

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest hardens the request parser against arbitrary bytes —
// the server decodes attacker-reachable (post-channel) payloads with it.
func FuzzDecodeRequest(f *testing.F) {
	f.Add(EncodeRequest(&Request{Cmd: CmdSet, Key: []byte("k"), Value: []byte("v")}))
	f.Add(EncodeRequest(&Request{Cmd: CmdGet, Key: []byte("key")}))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode to an equivalent request.
		rt, err := DecodeRequest(EncodeRequest(req))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if rt.Cmd != req.Cmd || !bytes.Equal(rt.Key, req.Key) ||
			!bytes.Equal(rt.Value, req.Value) || rt.Delta != req.Delta {
			t.Fatal("round trip not idempotent")
		}
	})
}

// FuzzDecodeResponse does the same for the client-side parser.
func FuzzDecodeResponse(f *testing.F) {
	f.Add(EncodeResponse(&Response{Status: StatusOK, Value: []byte("v"), Num: 7}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeResponse(data)
		if err != nil {
			return
		}
		rt, err := DecodeResponse(EncodeResponse(resp))
		if err != nil || rt.Status != resp.Status || rt.Num != resp.Num ||
			!bytes.Equal(rt.Value, resp.Value) {
			t.Fatal("round trip not idempotent")
		}
	})
}

// FuzzDecodeList hardens the MGet batch parser.
func FuzzDecodeList(f *testing.F) {
	f.Add(EncodeList([][]byte{{1}, nil, {2, 3}}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		items, err := DecodeList(data)
		if err != nil {
			return
		}
		rt, err := DecodeList(EncodeList(items))
		if err != nil || len(rt) != len(items) {
			t.Fatal("round trip failed")
		}
	})
}
