package proto

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest hardens the request parser against arbitrary bytes —
// the server decodes attacker-reachable (post-channel) payloads with it.
func FuzzDecodeRequest(f *testing.F) {
	f.Add(EncodeRequest(&Request{Cmd: CmdSet, Key: []byte("k"), Value: []byte("v")}))
	f.Add(EncodeRequest(&Request{Cmd: CmdGet, Key: []byte("key")}))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode to an equivalent request.
		rt, err := DecodeRequest(EncodeRequest(req))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if rt.Cmd != req.Cmd || !bytes.Equal(rt.Key, req.Key) ||
			!bytes.Equal(rt.Value, req.Value) || rt.Delta != req.Delta {
			t.Fatal("round trip not idempotent")
		}
	})
}

// FuzzDecodeResponse does the same for the client-side parser.
func FuzzDecodeResponse(f *testing.F) {
	f.Add(EncodeResponse(&Response{Status: StatusOK, Value: []byte("v"), Num: 7}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeResponse(data)
		if err != nil {
			return
		}
		rt, err := DecodeResponse(EncodeResponse(resp))
		if err != nil || rt.Status != resp.Status || rt.Num != resp.Num ||
			!bytes.Equal(rt.Value, resp.Value) {
			t.Fatal("round trip not idempotent")
		}
	})
}

// FuzzDecodeList hardens the MGet batch parser.
func FuzzDecodeList(f *testing.F) {
	f.Add(EncodeList([][]byte{{1}, nil, {2, 3}}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		items, err := DecodeList(data)
		if err != nil {
			return
		}
		rt, err := DecodeList(EncodeList(items))
		if err != nil || len(rt) != len(items) {
			t.Fatal("round trip failed")
		}
	})
}

// FuzzDecodeBatch hardens the CmdBatch op-vector parser: it decodes an
// attacker-reachable payload, so arbitrary bytes must never panic, and
// anything that decodes must survive a re-encode round trip.
func FuzzDecodeBatch(f *testing.F) {
	seed, _ := EncodeBatch([]BatchOp{
		{Cmd: CmdSet, Key: []byte("k"), Value: []byte("v")},
		{Cmd: CmdGet, Key: []byte("k2")},
		{Cmd: CmdIncr, Key: []byte("n"), Delta: -9},
	})
	f.Add(seed)
	empty, _ := EncodeBatch(nil)
	f.Add(empty)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{0x01}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		ops, err := DecodeBatch(data)
		if err != nil {
			return
		}
		if len(ops) > MaxBatchOps {
			t.Fatalf("decoded %d ops past MaxBatchOps", len(ops))
		}
		enc, err := EncodeBatch(ops)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		rt, err := DecodeBatch(enc)
		if err != nil || len(rt) != len(ops) {
			t.Fatalf("re-decode failed: %v (%d ops)", err, len(rt))
		}
		for i := range ops {
			if rt[i].Cmd != ops[i].Cmd || !bytes.Equal(rt[i].Key, ops[i].Key) ||
				!bytes.Equal(rt[i].Value, ops[i].Value) || rt[i].Delta != ops[i].Delta {
				t.Fatal("round trip not idempotent")
			}
		}
	})
}

// FuzzDecodeBatchResults does the same for the client-side result parser,
// additionally checking that the nil-value marker survives round trips
// (nil stays nil, empty stays empty).
func FuzzDecodeBatchResults(f *testing.F) {
	f.Add(EncodeBatchResults([]BatchResult{
		{Status: StatusOK, Value: []byte("v"), Num: 3},
		{Status: StatusNotFound, Value: nil},
		{Status: StatusOK, Value: []byte{}},
	}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		rs, err := DecodeBatchResults(data)
		if err != nil {
			return
		}
		rt, err := DecodeBatchResults(EncodeBatchResults(rs))
		if err != nil || len(rt) != len(rs) {
			t.Fatalf("re-decode failed: %v", err)
		}
		for i := range rs {
			if rt[i].Status != rs[i].Status || rt[i].Num != rs[i].Num ||
				!bytes.Equal(rt[i].Value, rs[i].Value) {
				t.Fatal("round trip not idempotent")
			}
			if (rs[i].Value == nil) != (rt[i].Value == nil) {
				t.Fatal("nil marker lost in round trip")
			}
		}
	})
}

// FuzzDecodeListNilMarkers extends the list fuzzer with an explicit
// nil-marker preservation check: a nil element must stay nil (not become
// empty) and vice versa across encode/decode.
func FuzzDecodeListNilMarkers(f *testing.F) {
	f.Add(EncodeList([][]byte{nil, {}, []byte("x"), nil}))
	f.Add(EncodeList(nil))
	f.Add([]byte{2, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		items, err := DecodeList(data)
		if err != nil {
			return
		}
		rt, err := DecodeList(EncodeList(items))
		if err != nil || len(rt) != len(items) {
			t.Fatal("round trip failed")
		}
		for i := range items {
			if (items[i] == nil) != (rt[i] == nil) {
				t.Fatalf("element %d nil marker lost", i)
			}
			if !bytes.Equal(items[i], rt[i]) {
				t.Fatalf("element %d content changed", i)
			}
		}
	})
}
