// Package loadgen drives a live ShieldStore server over the network with
// the paper's YCSB-style workloads (Table 2/3), measuring *wall-clock*
// throughput and latency percentiles. It complements internal/bench,
// which replays workloads against in-process stores in virtual time: the
// load generator exercises the real TCP/attestation/channel stack the way
// the paper's 256-user client machine does (§6.1, §6.4).
package loadgen

import (
	"fmt"
	"sync"
	"time"

	"shieldstore/internal/client"
	"shieldstore/internal/cluster"
	"shieldstore/internal/histo"
	"shieldstore/internal/workload"
)

// Options configures a run.
type Options struct {
	// Addr is the server address.
	Addr string
	// Client options (attestation etc).
	Client client.Options
	// Cluster, when non-nil, drives a sharded cluster through the
	// scatter-gather cluster client instead of the single server at Addr
	// (Addr and Client are then unused). Pipeline > 1 maps each worker's
	// burst onto one scatter-gather Batch — one round trip per involved
	// shard per burst.
	Cluster *cluster.Options
	// Workload is a Table 2 name (default RD95_Z).
	Workload string
	// Keys is the preloaded key-space size (default 10_000).
	Keys int
	// ValueSize is the value size in bytes (default 128).
	ValueSize int
	// Ops is the measured operation count (default 50_000).
	Ops int
	// Connections is the number of concurrent client connections
	// (default 8; the paper simulates 256 users).
	Connections int
	// Pipeline is the per-connection pipeline depth: operations are
	// queued and flushed in bursts of this size, overlapping requests on
	// the wire and in the server's partition workers. <= 1 issues one
	// synchronous round trip per op (the default).
	Pipeline int
	// Preload fills the key space before measuring (default true when
	// Keys > 0 and the caller does not disable it).
	SkipPreload bool
	// Seed drives deterministic op streams (wall times still vary).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Workload == "" {
		o.Workload = "RD95_Z"
	}
	if o.Keys <= 0 {
		o.Keys = 10_000
	}
	if o.ValueSize <= 0 {
		o.ValueSize = 128
	}
	if o.Ops <= 0 {
		o.Ops = 50_000
	}
	if o.Connections <= 0 {
		o.Connections = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Result summarizes a run.
type Result struct {
	Ops        int
	Errors     int
	Wall       time.Duration
	OpsPerSec  float64
	MeanUs     float64
	P50Us      float64
	P99Us      float64
	MaxUs      float64
	ByKind     map[string]int
	Workload   string
	Connection int
}

// Format renders a human-readable summary.
func (r Result) Format() string {
	return fmt.Sprintf(
		"workload=%s conns=%d ops=%d errors=%d wall=%.2fs\n"+
			"throughput=%.1f Kop/s  latency mean=%.0fus p50=%.0fus p99=%.0fus max=%.0fus",
		r.Workload, r.Connection, r.Ops, r.Errors, r.Wall.Seconds(),
		r.OpsPerSec/1e3, r.MeanUs, r.P50Us, r.P99Us, r.MaxUs)
}

// Run preloads (unless disabled) and executes the workload.
func Run(o Options) (Result, error) {
	o = o.withDefaults()
	spec, ok := workload.ByName(o.Workload)
	if !ok {
		return Result{}, fmt.Errorf("loadgen: unknown workload %q", o.Workload)
	}
	if o.Cluster != nil {
		return runCluster(o, spec)
	}

	if !o.SkipPreload {
		if err := preload(o); err != nil {
			return Result{}, err
		}
	}

	streams := splitStream(o, spec)
	results := make([]workerResult, o.Connections)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < o.Connections; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			res := &results[ci]
			res.kinds = map[string]int{}
			c, err := client.Dial(o.Addr, o.Client)
			if err != nil {
				res.failed = err
				return
			}
			defer c.Close()
			if o.Pipeline > 1 {
				res.failed = runPipelined(c, o, streams[ci], &res.lat, &res.errs, res.kinds)
				return
			}
			for _, op := range streams[ci] {
				key := workload.FormatKey(op.Key)
				t0 := time.Now()
				var err error
				switch op.Kind {
				case workload.Read:
					_, err = c.Get(key)
				case workload.Update, workload.Insert:
					err = c.Set(key, workload.MakeValue(o.ValueSize, op.Key))
				case workload.Append:
					err = c.Append(key, []byte("-app8byte"))
				case workload.ReadModifyWrite:
					var v []byte
					if v, err = c.Get(key); err == nil {
						err = c.Set(key, v)
					}
				}
				res.lat.Record(uint64(time.Since(t0).Microseconds()))
				res.kinds[op.Kind.String()]++
				if err != nil && err != client.ErrNotFound {
					res.errs++
				}
			}
		}(ci)
	}
	wg.Wait()
	return aggregate(o, results, time.Since(start))
}

// splitStream partitions the op stream across workers up front so the
// measured section does no generation work.
func splitStream(o Options, spec workload.Spec) [][]workload.Op {
	gen := workload.NewGen(spec, uint64(o.Keys), o.Seed)
	streams := make([][]workload.Op, o.Connections)
	for i := 0; i < o.Ops; i++ {
		streams[i%o.Connections] = append(streams[i%o.Connections], gen.Next())
	}
	return streams
}

// workerResult is one worker goroutine's tally.
type workerResult struct {
	lat    histo.Histogram
	errs   int
	kinds  map[string]int
	failed error
}

// aggregate merges the per-worker tallies into the run result.
func aggregate(o Options, results []workerResult, wall time.Duration) (Result, error) {
	agg := Result{
		Ops: o.Ops, Wall: wall, Workload: o.Workload,
		Connection: o.Connections, ByKind: map[string]int{},
	}
	var lat histo.Histogram
	for i := range results {
		if results[i].failed != nil {
			return Result{}, results[i].failed
		}
		lat.Merge(&results[i].lat)
		agg.Errors += results[i].errs
		for k, n := range results[i].kinds {
			agg.ByKind[k] += n
		}
	}
	agg.OpsPerSec = float64(o.Ops) / wall.Seconds()
	agg.MeanUs = lat.Mean()
	agg.P50Us = float64(lat.Quantile(0.5))
	agg.P99Us = float64(lat.Quantile(0.99))
	agg.MaxUs = float64(lat.Max())
	return agg, nil
}

// runCluster drives a sharded cluster: every worker issues ops through
// one shared scatter-gather cluster client (which is concurrency-safe;
// its per-shard pools bound the fan-out).
func runCluster(o Options, spec workload.Spec) (Result, error) {
	copts := *o.Cluster
	if copts.Conns <= 0 {
		// One borrowed connection per worker per shard keeps workers from
		// serializing on the pools.
		copts.Conns = o.Connections
	}
	cc, err := cluster.Dial(copts)
	if err != nil {
		return Result{}, err
	}
	defer cc.Close()

	if !o.SkipPreload {
		if err := preloadCluster(cc, o); err != nil {
			return Result{}, err
		}
	}

	streams := splitStream(o, spec)
	results := make([]workerResult, o.Connections)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < o.Connections; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			res := &results[ci]
			res.kinds = map[string]int{}
			if o.Pipeline > 1 {
				res.failed = runClusterBatched(cc, o, streams[ci], res)
				return
			}
			for _, op := range streams[ci] {
				key := workload.FormatKey(op.Key)
				t0 := time.Now()
				var err error
				switch op.Kind {
				case workload.Read:
					_, err = cc.Get(key)
				case workload.Update, workload.Insert:
					err = cc.Set(key, workload.MakeValue(o.ValueSize, op.Key))
				case workload.Append:
					err = cc.Append(key, []byte("-app8byte"))
				case workload.ReadModifyWrite:
					var v []byte
					if v, err = cc.Get(key); err == nil {
						err = cc.Set(key, v)
					}
				}
				res.lat.Record(uint64(time.Since(t0).Microseconds()))
				res.kinds[op.Kind.String()]++
				if err != nil && err != client.ErrNotFound {
					res.errs++
				}
			}
		}(ci)
	}
	wg.Wait()
	return aggregate(o, results, time.Since(start))
}

// runClusterBatched maps one worker's stream onto scatter-gather batches
// of o.Pipeline ops. Per-op latency is the wall time of the batch the op
// rode in. Read-modify-write is approximated by an independent Get and
// Set in the same batch, as in the pipelined single-node mode.
func runClusterBatched(cc *cluster.Client, o Options, stream []workload.Op, res *workerResult) error {
	var ops []client.Op
	flush := func() error {
		if len(ops) == 0 {
			return nil
		}
		t0 := time.Now()
		rs := cc.Batch(ops...)
		us := uint64(time.Since(t0).Microseconds())
		for i := range rs {
			res.lat.Record(us)
			if rs[i].Err != nil && rs[i].Err != client.ErrNotFound {
				res.errs++
			}
		}
		ops = ops[:0]
		return nil
	}
	for _, op := range stream {
		key := workload.FormatKey(op.Key)
		switch op.Kind {
		case workload.Read:
			ops = append(ops, client.GetOp(key))
		case workload.Update, workload.Insert:
			ops = append(ops, client.SetOp(key, workload.MakeValue(o.ValueSize, op.Key)))
		case workload.Append:
			ops = append(ops, client.AppendOp(key, []byte("-app8byte")))
		case workload.ReadModifyWrite:
			ops = append(ops, client.GetOp(key),
				client.SetOp(key, workload.MakeValue(o.ValueSize, op.Key)))
		}
		res.kinds[op.Kind.String()]++
		if len(ops) >= o.Pipeline {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// preloadCluster fills the key space through the scatter-gather path.
func preloadCluster(cc *cluster.Client, o Options) error {
	const chunk = 128
	for at := 0; at < o.Keys; at += chunk {
		end := min(at+chunk, o.Keys)
		keys := make([][]byte, 0, end-at)
		vals := make([][]byte, 0, end-at)
		for id := at; id < end; id++ {
			keys = append(keys, workload.FormatKey(uint64(id)))
			vals = append(vals, workload.MakeValue(o.ValueSize, uint64(id)))
		}
		if err := cc.MSet(keys, vals); err != nil {
			return err
		}
	}
	return nil
}

// runPipelined drives one connection's op stream through a client
// Pipeline, flushing every o.Pipeline queued requests. Per-op latency is
// the wall time of the flush the op rode in — what a pipelining client
// observes. Read-modify-write is approximated by an independent Get and
// Set in the same burst (the true data dependency would stall the
// pipeline).
func runPipelined(c *client.Client, o Options, stream []workload.Op, lat *histo.Histogram, errs *int, kinds map[string]int) error {
	pl := c.Pipeline()
	flush := func() error {
		if pl.Len() == 0 {
			return nil
		}
		t0 := time.Now()
		rs, err := pl.Flush()
		if err != nil {
			return err
		}
		us := uint64(time.Since(t0).Microseconds())
		for i := range rs {
			lat.Record(us)
			if rs[i].Err != nil && rs[i].Err != client.ErrNotFound {
				*errs++
			}
		}
		return nil
	}
	for _, op := range stream {
		key := workload.FormatKey(op.Key)
		switch op.Kind {
		case workload.Read:
			pl.Get(key)
		case workload.Update, workload.Insert:
			pl.Set(key, workload.MakeValue(o.ValueSize, op.Key))
		case workload.Append:
			pl.Append(key, []byte("-app8byte"))
		case workload.ReadModifyWrite:
			pl.Get(key)
			pl.Set(key, workload.MakeValue(o.ValueSize, op.Key))
		}
		kinds[op.Kind.String()]++
		if pl.Len() >= o.Pipeline {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// preload fills the key space over a handful of connections.
func preload(o Options) error {
	const loaders = 4
	var wg sync.WaitGroup
	errs := make(chan error, loaders)
	per := (o.Keys + loaders - 1) / loaders
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			c, err := client.Dial(o.Addr, o.Client)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for id := l * per; id < (l+1)*per && id < o.Keys; id++ {
				if err := c.Set(workload.FormatKey(uint64(id)), workload.MakeValue(o.ValueSize, uint64(id))); err != nil {
					errs <- err
					return
				}
			}
		}(l)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	return nil
}
