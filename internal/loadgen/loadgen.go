// Package loadgen drives a live ShieldStore server over the network with
// the paper's YCSB-style workloads (Table 2/3), measuring *wall-clock*
// throughput and latency percentiles. It complements internal/bench,
// which replays workloads against in-process stores in virtual time: the
// load generator exercises the real TCP/attestation/channel stack the way
// the paper's 256-user client machine does (§6.1, §6.4).
package loadgen

import (
	"fmt"
	"sync"
	"time"

	"shieldstore/internal/client"
	"shieldstore/internal/histo"
	"shieldstore/internal/workload"
)

// Options configures a run.
type Options struct {
	// Addr is the server address.
	Addr string
	// Client options (attestation etc).
	Client client.Options
	// Workload is a Table 2 name (default RD95_Z).
	Workload string
	// Keys is the preloaded key-space size (default 10_000).
	Keys int
	// ValueSize is the value size in bytes (default 128).
	ValueSize int
	// Ops is the measured operation count (default 50_000).
	Ops int
	// Connections is the number of concurrent client connections
	// (default 8; the paper simulates 256 users).
	Connections int
	// Pipeline is the per-connection pipeline depth: operations are
	// queued and flushed in bursts of this size, overlapping requests on
	// the wire and in the server's partition workers. <= 1 issues one
	// synchronous round trip per op (the default).
	Pipeline int
	// Preload fills the key space before measuring (default true when
	// Keys > 0 and the caller does not disable it).
	SkipPreload bool
	// Seed drives deterministic op streams (wall times still vary).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Workload == "" {
		o.Workload = "RD95_Z"
	}
	if o.Keys <= 0 {
		o.Keys = 10_000
	}
	if o.ValueSize <= 0 {
		o.ValueSize = 128
	}
	if o.Ops <= 0 {
		o.Ops = 50_000
	}
	if o.Connections <= 0 {
		o.Connections = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Result summarizes a run.
type Result struct {
	Ops        int
	Errors     int
	Wall       time.Duration
	OpsPerSec  float64
	MeanUs     float64
	P50Us      float64
	P99Us      float64
	MaxUs      float64
	ByKind     map[string]int
	Workload   string
	Connection int
}

// Format renders a human-readable summary.
func (r Result) Format() string {
	return fmt.Sprintf(
		"workload=%s conns=%d ops=%d errors=%d wall=%.2fs\n"+
			"throughput=%.1f Kop/s  latency mean=%.0fus p50=%.0fus p99=%.0fus max=%.0fus",
		r.Workload, r.Connection, r.Ops, r.Errors, r.Wall.Seconds(),
		r.OpsPerSec/1e3, r.MeanUs, r.P50Us, r.P99Us, r.MaxUs)
}

// Run preloads (unless disabled) and executes the workload.
func Run(o Options) (Result, error) {
	o = o.withDefaults()
	spec, ok := workload.ByName(o.Workload)
	if !ok {
		return Result{}, fmt.Errorf("loadgen: unknown workload %q", o.Workload)
	}

	if !o.SkipPreload {
		if err := preload(o); err != nil {
			return Result{}, err
		}
	}

	// Partition the op stream across connections up front so the
	// measured section does no generation work.
	gen := workload.NewGen(spec, uint64(o.Keys), o.Seed)
	streams := make([][]workload.Op, o.Connections)
	for i := 0; i < o.Ops; i++ {
		streams[i%o.Connections] = append(streams[i%o.Connections], gen.Next())
	}

	type connResult struct {
		lat    histo.Histogram
		errs   int
		kinds  map[string]int
		failed error
	}
	results := make([]connResult, o.Connections)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < o.Connections; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			res := &results[ci]
			res.kinds = map[string]int{}
			c, err := client.Dial(o.Addr, o.Client)
			if err != nil {
				res.failed = err
				return
			}
			defer c.Close()
			if o.Pipeline > 1 {
				res.failed = runPipelined(c, o, streams[ci], &res.lat, &res.errs, res.kinds)
				return
			}
			for _, op := range streams[ci] {
				key := workload.FormatKey(op.Key)
				t0 := time.Now()
				var err error
				switch op.Kind {
				case workload.Read:
					_, err = c.Get(key)
				case workload.Update, workload.Insert:
					err = c.Set(key, workload.MakeValue(o.ValueSize, op.Key))
				case workload.Append:
					err = c.Append(key, []byte("-app8byte"))
				case workload.ReadModifyWrite:
					var v []byte
					if v, err = c.Get(key); err == nil {
						err = c.Set(key, v)
					}
				}
				res.lat.Record(uint64(time.Since(t0).Microseconds()))
				res.kinds[op.Kind.String()]++
				if err != nil && err != client.ErrNotFound {
					res.errs++
				}
			}
		}(ci)
	}
	wg.Wait()
	wall := time.Since(start)

	agg := Result{
		Ops: o.Ops, Wall: wall, Workload: o.Workload,
		Connection: o.Connections, ByKind: map[string]int{},
	}
	var lat histo.Histogram
	for i := range results {
		if results[i].failed != nil {
			return Result{}, results[i].failed
		}
		lat.Merge(&results[i].lat)
		agg.Errors += results[i].errs
		for k, n := range results[i].kinds {
			agg.ByKind[k] += n
		}
	}
	agg.OpsPerSec = float64(o.Ops) / wall.Seconds()
	agg.MeanUs = lat.Mean()
	agg.P50Us = float64(lat.Quantile(0.5))
	agg.P99Us = float64(lat.Quantile(0.99))
	agg.MaxUs = float64(lat.Max())
	return agg, nil
}

// runPipelined drives one connection's op stream through a client
// Pipeline, flushing every o.Pipeline queued requests. Per-op latency is
// the wall time of the flush the op rode in — what a pipelining client
// observes. Read-modify-write is approximated by an independent Get and
// Set in the same burst (the true data dependency would stall the
// pipeline).
func runPipelined(c *client.Client, o Options, stream []workload.Op, lat *histo.Histogram, errs *int, kinds map[string]int) error {
	pl := c.Pipeline()
	flush := func() error {
		if pl.Len() == 0 {
			return nil
		}
		t0 := time.Now()
		rs, err := pl.Flush()
		if err != nil {
			return err
		}
		us := uint64(time.Since(t0).Microseconds())
		for i := range rs {
			lat.Record(us)
			if rs[i].Err != nil && rs[i].Err != client.ErrNotFound {
				*errs++
			}
		}
		return nil
	}
	for _, op := range stream {
		key := workload.FormatKey(op.Key)
		switch op.Kind {
		case workload.Read:
			pl.Get(key)
		case workload.Update, workload.Insert:
			pl.Set(key, workload.MakeValue(o.ValueSize, op.Key))
		case workload.Append:
			pl.Append(key, []byte("-app8byte"))
		case workload.ReadModifyWrite:
			pl.Get(key)
			pl.Set(key, workload.MakeValue(o.ValueSize, op.Key))
		}
		kinds[op.Kind.String()]++
		if pl.Len() >= o.Pipeline {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// preload fills the key space over a handful of connections.
func preload(o Options) error {
	const loaders = 4
	var wg sync.WaitGroup
	errs := make(chan error, loaders)
	per := (o.Keys + loaders - 1) / loaders
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			c, err := client.Dial(o.Addr, o.Client)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for id := l * per; id < (l+1)*per && id < o.Keys; id++ {
				if err := c.Set(workload.FormatKey(uint64(id)), workload.MakeValue(o.ValueSize, uint64(id))); err != nil {
					errs <- err
					return
				}
			}
		}(l)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	return nil
}
