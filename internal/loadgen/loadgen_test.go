package loadgen

import (
	"net"
	"strings"
	"testing"

	"shieldstore"
	"shieldstore/internal/client"
)

func startServer(t *testing.T) (*shieldstore.DB, string) {
	t.Helper()
	db, err := shieldstore.Open(shieldstore.Config{
		Partitions: 2, Buckets: 1024, EPCBytes: 8 << 20, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := db.Serve(ln, shieldstore.ServeOptions{HotCalls: true})
	t.Cleanup(srv.Close)
	return db, srv.Addr().String()
}

func TestRunAgainstLiveServer(t *testing.T) {
	db, addr := startServer(t)
	res, err := Run(Options{
		Addr: addr,
		Client: client.Options{
			Verifier:    db.Enclave(),
			Measurement: shieldstore.Measurement(),
			Secure:      true,
		},
		Workload:    "RD50_Z",
		Keys:        500,
		ValueSize:   64,
		Ops:         2000,
		Connections: 3,
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 2000 || res.Errors != 0 {
		t.Fatalf("ops=%d errors=%d", res.Ops, res.Errors)
	}
	if res.OpsPerSec <= 0 || res.P99Us < res.P50Us || res.MeanUs <= 0 {
		t.Fatalf("bad metrics: %+v", res)
	}
	if db.Keys() < 500 {
		t.Fatalf("preload missing: %d keys", db.Keys())
	}
	reads := res.ByKind["read"]
	if reads < 800 || reads > 1200 {
		t.Fatalf("read mix = %d/2000, want ~50%%", reads)
	}
	if !strings.Contains(res.Format(), "Kop/s") {
		t.Fatal("Format missing throughput")
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := Run(Options{Addr: "127.0.0.1:1", Workload: "nope"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunConnectFailure(t *testing.T) {
	if _, err := Run(Options{Addr: "127.0.0.1:1", Workload: "RD95_Z", Keys: 10, Ops: 10}); err == nil {
		t.Fatal("dial failure not surfaced")
	}
}

func TestSkipPreload(t *testing.T) {
	db, addr := startServer(t)
	// Load a tiny key space manually, then run reads only.
	c, err := client.Dial(addr, client.Options{
		Verifier: db.Enclave(), Measurement: shieldstore.Measurement(), Secure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := c.Set([]byte{byte(i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	before := db.Keys()
	res, err := Run(Options{
		Addr: addr,
		Client: client.Options{
			Verifier: db.Enclave(), Measurement: shieldstore.Measurement(), Secure: true,
		},
		Workload: "RD100_U", Keys: 50, Ops: 500, Connections: 2, SkipPreload: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Misses are fine for RD100 over a mismatched space, but nothing may
	// have been written.
	if db.Keys() != before {
		t.Fatalf("skip-preload wrote keys: %d -> %d", before, db.Keys())
	}
	if res.Ops != 500 {
		t.Fatalf("ops = %d", res.Ops)
	}
}
