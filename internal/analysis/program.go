package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Program is a loaded, type-checked module plus the derived indexes the
// checkers share: annotations, declared functions, and the call graph.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	Dir        string
	Packages   []*Package

	Annot *Annotations

	// Decls maps every module-declared function or method to its
	// declaration site.
	Decls map[*types.Func]*FuncDecl

	// impls maps interface methods to the module methods implementing
	// them, for conservative devirtualization in the call graph.
	impls map[*types.Func][]*types.Func
}

// FuncDecl pairs a function object with its syntax and package.
type FuncDecl struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

func (p *Program) init() {
	p.Annot = collectAnnotations(p.Packages)
	p.Decls = map[*types.Func]*FuncDecl{}
	for _, pkg := range p.Packages {
		for _, file := range pkg.Syntax {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					p.Decls[fn] = &FuncDecl{Fn: fn, Decl: fd, Pkg: pkg}
				}
			}
		}
	}
	p.buildImpls()
}

// buildImpls records, for every interface method invoked anywhere in the
// module, which module-declared concrete methods may stand behind it.
func (p *Program) buildImpls() {
	p.impls = map[*types.Func][]*types.Func{}

	// All named non-interface types declared in the module.
	var concrete []types.Type
	for _, pkg := range p.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			concrete = append(concrete, named)
		}
	}

	// All interfaces declared in the module (methods of external
	// interfaces like io.Reader lead out of the module; their module
	// implementations are still found below because we index by the
	// interface method object the call site resolves to).
	seen := map[*types.Interface]bool{}
	var record func(iface *types.Interface)
	record = func(iface *types.Interface) {
		if iface == nil || seen[iface] {
			return
		}
		seen[iface] = true
		for i := 0; i < iface.NumMethods(); i++ {
			im := iface.Method(i)
			for _, ct := range concrete {
				ptr := types.NewPointer(ct)
				if !types.Implements(ct, iface) && !types.Implements(ptr, iface) {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(ptr, true, im.Pkg(), im.Name())
				if cm, ok := obj.(*types.Func); ok {
					if _, declared := p.Decls[cm]; declared {
						p.impls[im] = append(p.impls[im], cm)
					}
				}
			}
		}
	}
	for _, pkg := range p.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
					record(iface)
				}
			}
		}
	}
}

// Callees returns the module-declared functions a call expression may
// invoke: the static callee when resolvable, or every module
// implementation when the call goes through an interface method.
func (p *Program) Callees(pkg *Package, call *ast.CallExpr) []*types.Func {
	fn := calleeOf(pkg.Info, call)
	if fn == nil {
		return nil
	}
	if recv := fn.Signature().Recv(); recv != nil && types.IsInterface(recv.Type()) {
		return p.impls[fn]
	}
	if _, ok := p.Decls[fn]; ok {
		return []*types.Func{fn}
	}
	return nil
}

// CalleeObject resolves the called function object (module or not), or nil
// for builtins, conversions, and calls through function values.
func CalleeObject(info *types.Info, call *ast.CallExpr) *types.Func {
	return calleeOf(info, call)
}

func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if fn, ok := info.Uses[id].(*types.Func); ok {
				return fn
			}
		}
	}
	return nil
}

// isBuiltinCall reports whether call invokes the named builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// Reachable computes the set of module functions reachable from the given
// roots through the call graph (direct calls, devirtualized interface
// calls, and calls inside function literals, which are attributed to the
// enclosing declaration). The returned map gives, for each reachable
// function, the root it was first reached from.
func (p *Program) Reachable(roots []*types.Func) map[*types.Func]*types.Func {
	from := map[*types.Func]*types.Func{}
	var queue []*types.Func
	for _, r := range roots {
		if _, ok := from[r]; !ok {
			from[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fd, ok := p.Decls[fn]
		if !ok {
			continue
		}
		root := from[fn]
		ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, callee := range p.Callees(fd.Pkg, call) {
				if _, seen := from[callee]; !seen {
					from[callee] = root
					queue = append(queue, callee)
				}
			}
			return true
		})
	}
	return from
}

// Roots returns every function annotated with the given directive, in
// deterministic order.
func (p *Program) Roots(directive string) []*types.Func {
	var roots []*types.Func
	for fn := range p.Decls {
		if p.Annot.FuncHas(fn, directive) {
			roots = append(roots, fn)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].FullName() < roots[j].FullName() })
	return roots
}

// Position resolves a node position against the program's file set.
func (p *Program) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}
