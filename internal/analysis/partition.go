package analysis

import (
	"go/ast"
	"go/types"
)

// partitionChecker verifies the §5.3 no-sharing discipline: struct fields
// annotated //ss:partitioned hold per-partition mutable state that only
// the dispatch/control plane (//ss:xpart functions) may index, range
// over, alias, or reassign. Worker code owns exactly one partition and
// must receive it by handoff, never by reaching into a sibling's slot —
// the property that lets the data path run with zero synchronization.
type partitionChecker struct{}

func (partitionChecker) Name() string { return "partition" }

func (partitionChecker) Check(p *Program) []Finding {
	var findings []Finding
	for _, fd := range sortedDecls(p) {
		if p.Annot.FuncOrPkgHas(fd.Fn, DirXPart) {
			continue
		}
		findings = append(findings, checkPartitionAccess(p, fd)...)
	}
	return findings
}

// partitionedField resolves a selector to a //ss:partitioned struct field.
func partitionedField(p *Program, info *types.Info, se *ast.SelectorExpr) *types.Var {
	sel, ok := info.Selections[se]
	if !ok || sel.Kind() != types.FieldVal {
		return nil
	}
	field, ok := sel.Obj().(*types.Var)
	if !ok || !p.Annot.FieldHas(field, DirPartitioned) {
		return nil
	}
	return field
}

func checkPartitionAccess(p *Program, fd *FuncDecl) []Finding {
	info := fd.Pkg.Info
	var findings []Finding
	var stack []ast.Node
	report := func(n ast.Node, field *types.Var, verb string) {
		findings = append(findings, p.newFinding("partition", n.Pos(),
			"%s %s //ss:partitioned field %s outside the dispatch plane (missing //ss:xpart)",
			fd.Fn.Name(), verb, field.Name()))
	}
	ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		se, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		field := partitionedField(p, info, se)
		if field == nil || len(stack) < 2 {
			return true
		}
		switch parent := stack[len(stack)-2].(type) {
		case *ast.IndexExpr:
			if parent.X == se {
				report(parent, field, "indexes")
			}
		case *ast.RangeStmt:
			if parent.X == se {
				report(parent, field, "ranges over")
			}
		case *ast.SliceExpr:
			if parent.X == se {
				report(parent, field, "slices")
			}
		case *ast.AssignStmt:
			for _, lhs := range parent.Lhs {
				if ast.Unparen(lhs) == se {
					report(parent, field, "reassigns")
				}
			}
		case *ast.CallExpr:
			if parent.Fun == se {
				return true
			}
			if isBuiltinCall(info, parent, "len") || isBuiltinCall(info, parent, "cap") {
				return true
			}
			report(parent, field, "aliases")
		}
		return true
	})
	return findings
}
