package analysis

import "testing"

func TestParseDirectiveLine(t *testing.T) {
	cases := []struct {
		in        string
		name, arg string
		ok        bool
	}{
		{"//ss:trusted", "trusted", "", true},
		{"//ss:nopanic-ok(bounds checked by caller)", "nopanic-ok", "bounds checked by caller", true},
		{"//ss:host(analyzer tool; runs outside)", "host", "analyzer tool; runs outside", true},
		{"//ss:attacker — parses adversary-controlled bytes.", "attacker", "parses adversary-controlled bytes.", true},
		{"//ss:xpart — constructor; workers do not exist yet.", "xpart", "constructor; workers do not exist yet.", true},
		{"//ss:enclave-write", "enclave-write", "", true},
		{"// not a directive", "", "", false},
		{"//ss:", "", "", false},
		{"// ss:trusted", "", "", false}, // space breaks the directive form
	}
	for _, c := range cases {
		name, arg, ok := parseDirectiveLine(c.in)
		if name != c.name || arg != c.arg || ok != c.ok {
			t.Errorf("parseDirectiveLine(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.in, name, arg, ok, c.name, c.arg, c.ok)
		}
	}
}
