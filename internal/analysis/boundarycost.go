package analysis

import (
	"go/ast"
	"go/types"
)

// boundaryCostChecker keeps the simulator's benchmark numbers honest:
// every enclave boundary crossing must be charged to the cost model.
//
//  1. A function annotated //ss:ocall or //ss:ecall must reach a
//     //ss:charges primitive (sgx.ECall/OCall/HotCall/Syscall) — or
//     delegate to another annotated crossing — within two call hops.
//     A crossing that forgets to charge makes every derived Kop/s figure
//     silently optimistic.
//  2. Any direct use of host I/O (the os and net packages) must be
//     annotated //ss:ocall, //ss:ecall, or //ss:host: enclave code cannot
//     touch the OS without a transition, so unannotated I/O is either an
//     unmodeled crossing or host-side code that must declare itself.
type boundaryCostChecker struct{}

func (boundaryCostChecker) Name() string { return "boundarycost" }

// benignHostCalls are os/net functions with no syscall-shaped cost worth
// modeling (environment lookups, pure string/address helpers).
var benignHostCalls = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
	"IsNotExist": true, "IsExist": true, "IsTimeout": true,
	"TempDir": true, "UserHomeDir": true, "Exit": true,
	"JoinHostPort": true, "SplitHostPort": true, "ParseIP": true,
}

func (boundaryCostChecker) Check(p *Program) []Finding {
	var findings []Finding
	for _, fd := range sortedDecls(p) {
		dir := ""
		switch {
		case p.Annot.FuncHas(fd.Fn, DirOCall):
			dir = DirOCall
		case p.Annot.FuncHas(fd.Fn, DirECall):
			dir = DirECall
		}
		if dir != "" && !chargesCrossing(p, fd.Fn, 2) {
			findings = append(findings, p.newFinding("boundarycost", fd.Decl.Pos(),
				"%s is annotated //ss:%s but never charges an enclave crossing (no //ss:charges primitive within two calls)",
				fd.Fn.Name(), dir))
		}
		if dir == "" && !p.Annot.FuncOrPkgHas(fd.Fn, DirHost) {
			findings = append(findings, checkHostIO(p, fd)...)
		}
	}
	return findings
}

// chargesCrossing reports whether fn calls a //ss:charges primitive or
// another annotated crossing within the given call depth.
func chargesCrossing(p *Program, fn *types.Func, depth int) bool {
	fd, ok := p.Decls[fn]
	if !ok {
		return false
	}
	found := false
	ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(fd.Pkg.Info, call)
		if callee == nil {
			return true
		}
		if p.Annot.FuncHas(callee, DirCharges) ||
			p.Annot.FuncHas(callee, DirOCall) || p.Annot.FuncHas(callee, DirECall) {
			found = true
			return false
		}
		if depth > 1 && chargesCrossing(p, callee, depth-1) {
			found = true
			return false
		}
		return true
	})
	return found
}

func checkHostIO(p *Program, fd *FuncDecl) []Finding {
	var findings []Finding
	ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(fd.Pkg.Info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		path := callee.Pkg().Path()
		if path != "os" && path != "net" {
			return true
		}
		if benignHostCalls[callee.Name()] {
			return true
		}
		findings = append(findings, p.newFinding("boundarycost", call.Pos(),
			"%s calls %s without //ss:ocall, //ss:ecall, or //ss:host annotation — host I/O from enclave code must charge a modeled crossing",
			fd.Fn.Name(), callee.FullName()))
		return true
	})
	return findings
}
