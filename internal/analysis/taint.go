package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Two-color taint engine shared by the keyflow and keylife checkers.
//
// Color semantics:
//
//   - secret: raw key material (//ss:secret functions, types, fields).
//     Subject to every keyflow rule and to keylife wipe obligations.
//   - authn: authenticated material — MAC tags and keyed digests
//     (//ss:authn). Subject only to the constant-time-comparison rule.
//
// Propagation is deliberately asymmetric about calls: a call RESULT is
// tainted only when the callee's summary says so (annotation, or the
// module-wide fixpoint below observing the callee return tainted
// values). Passing tainted bytes INTO a call does not taint its result —
// that is precisely how sealing and encryption launder taint, and it is
// what keeps `sealed := e.Seal(m, key)` out of the host-I/O rule while
// `os.WriteFile(path, key)` stays in it. Within a function, taint flows
// through assignment, append/copy, conversions, slicing, indexing,
// struct access on tainted values, and range statements.
//
// Summaries are per result index, so a function returning (key, val,
// err) can carry color on key alone. A directive's argument may scope
// it: //ss:authn(key — ...) colors only the result named key. With no
// leading result name, every non-error result is colored.

// Taint color bits.
const (
	taintSecret uint8 = 1 << iota
	taintAuthn
)

// taintInfo carries the module-wide function summaries: the colors each
// declared function's results may carry, per result index.
type taintInfo struct {
	p         *Program
	summaries map[*types.Func][]uint8
}

// annotTaint returns the per-result colors a function is explicitly
// annotated with. The directive argument's leading word(s) may name
// result parameters to scope the color; otherwise every non-error
// result is colored.
func annotTaint(p *Program, fn *types.Func) []uint8 {
	results := fn.Signature().Results()
	if results.Len() == 0 {
		return nil
	}
	bits := make([]uint8, results.Len())
	apply := func(dir string, color uint8) {
		if !p.Annot.FuncHas(fn, dir) {
			return
		}
		scoped := false
		for _, tok := range leadingTokens(p.Annot.FuncArg(fn, dir)) {
			for i := 0; i < results.Len(); i++ {
				if results.At(i).Name() == tok {
					bits[i] |= color
					scoped = true
				}
			}
		}
		if scoped {
			return
		}
		for i := 0; i < results.Len(); i++ {
			if !isErrorType(results.At(i).Type()) {
				bits[i] |= color
			}
		}
	}
	apply(DirSecret, taintSecret)
	apply(DirAuthn, taintAuthn)
	return bits
}

// leadingTokens returns the run of identifier-shaped words at the start
// of a directive argument, stopping at the first word that could not be
// a result name (punctuation, dashes, prose).
func leadingTokens(arg string) []string {
	var out []string
	for _, f := range strings.Fields(arg) {
		tok := strings.TrimSuffix(f, ",")
		ok := tok != ""
		for _, r := range tok {
			if !(r == '_' || 'a' <= r && r <= 'z' || 'A' <= r && r <= 'Z' || '0' <= r && r <= '9') {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		out = append(out, tok)
		if !strings.HasSuffix(f, ",") {
			break
		}
	}
	return out
}

func orBits(bits []uint8) uint8 {
	var all uint8
	for _, b := range bits {
		all |= b
	}
	return all
}

func mergeBits(dst, src []uint8) []uint8 {
	if len(dst) < len(src) {
		grown := make([]uint8, len(src))
		copy(grown, dst)
		dst = grown
	}
	for i, b := range src {
		dst[i] |= b
	}
	return dst
}

// isSecretNamed unwraps pointers and reports whether the named type's
// declaration carries //ss:secret.
func isSecretNamed(p *Program, t types.Type) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return p.Annot.TypeHas(named.Obj(), DirSecret)
}

// computeTaint runs the module-wide summary fixpoint: a function's
// summary is its annotation bits plus the colors of everything its
// return statements can carry, recomputed until stable.
func computeTaint(p *Program) *taintInfo {
	ti := &taintInfo{p: p, summaries: map[*types.Func][]uint8{}}
	decls := sortedDecls(p)
	for _, fd := range decls {
		ti.summaries[fd.Fn] = annotTaint(p, fd.Fn)
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			ft := ti.funcTaint(fd)
			bits := mergeBits(annotTaint(p, fd.Fn), ft.returnBits())
			if !bitsEqual(bits, ti.summaries[fd.Fn]) {
				ti.summaries[fd.Fn] = bits
				changed = true
			}
		}
	}
	return ti
}

func bitsEqual(a, b []uint8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// calleeResultBits returns the per-result colors a call expression may
// produce, resolving interface calls to every module implementation.
func (ti *taintInfo) calleeResultBits(pkg *Package, call *ast.CallExpr) []uint8 {
	var bits []uint8
	if callee := calleeOf(pkg.Info, call); callee != nil {
		bits = mergeBits(bits, annotTaint(ti.p, callee))
	}
	for _, callee := range ti.p.Callees(pkg, call) {
		bits = mergeBits(bits, ti.summaries[callee])
		bits = mergeBits(bits, annotTaint(ti.p, callee))
	}
	return bits
}

// funcTaint is the per-function taint state: the colors each local
// object (variable or named result) may hold.
type funcTaint struct {
	ti      *taintInfo
	fd      *FuncDecl
	tainted map[types.Object]uint8
}

// funcTaint computes the function's local taint map to a fixpoint.
func (ti *taintInfo) funcTaint(fd *FuncDecl) *funcTaint {
	ft := &funcTaint{ti: ti, fd: fd, tainted: map[types.Object]uint8{}}
	for changed := true; changed; {
		changed = ft.propagate()
	}
	return ft
}

// exprTaint returns the colors an expression may carry. Error values
// never carry taint: an error is a message about key material, not the
// material itself.
func (ft *funcTaint) exprTaint(e ast.Expr) uint8 {
	if e == nil {
		return 0
	}
	info := ft.fd.Pkg.Info
	if tv, ok := info.Types[e]; ok && tv.IsValue() && isErrorType(tv.Type) {
		return 0
	}
	var bits uint8
	if tv, ok := info.Types[e]; ok && tv.IsValue() && isSecretNamed(ft.ti.p, tv.Type) {
		bits |= taintSecret
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := info.ObjectOf(e); obj != nil {
			bits |= ft.tainted[obj]
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && ft.ti.p.Annot.FieldHas(v, DirSecret) {
				bits |= taintSecret
			}
			if sel.Kind() == types.FieldVal {
				bits |= ft.exprTaint(e.X)
			}
		}
	case *ast.CallExpr:
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			// Conversion: T(x) carries x's taint.
			for _, arg := range e.Args {
				bits |= ft.exprTaint(arg)
			}
			break
		}
		switch {
		case isBuiltinCall(info, e, "len"), isBuiltinCall(info, e, "cap"):
			// Lengths of key material are not secret.
		case isBuiltinCall(info, e, "append"):
			for _, arg := range e.Args {
				bits |= ft.exprTaint(arg)
			}
		default:
			// In expression position a call has one meaningful value;
			// OR over results is exact for single-result callees and
			// conservative for multi-result pass-through.
			bits |= orBits(ft.ti.calleeResultBits(ft.fd.Pkg, e))
		}
	case *ast.ParenExpr:
		bits |= ft.exprTaint(e.X)
	case *ast.UnaryExpr:
		bits |= ft.exprTaint(e.X)
	case *ast.StarExpr:
		bits |= ft.exprTaint(e.X)
	case *ast.IndexExpr:
		bits |= ft.exprTaint(e.X)
	case *ast.SliceExpr:
		bits |= ft.exprTaint(e.X)
	case *ast.BinaryExpr:
		bits |= ft.exprTaint(e.X) | ft.exprTaint(e.Y)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				bits |= ft.exprTaint(kv.Value)
				continue
			}
			bits |= ft.exprTaint(elt)
		}
	case *ast.TypeAssertExpr:
		bits |= ft.exprTaint(e.X)
	}
	return bits
}

// taintObj adds colors to a local object, reporting change.
func (ft *funcTaint) taintObj(obj types.Object, bits uint8) bool {
	if obj == nil || bits == 0 {
		return false
	}
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	if isErrorType(obj.Type()) {
		return false
	}
	old := ft.tainted[obj]
	if old|bits == old {
		return false
	}
	ft.tainted[obj] = old | bits
	return true
}

// taintLHS taints the object behind an assignment target (plain
// identifiers only; stores through fields and indexes move ownership
// out of the local frame and are not tracked).
func (ft *funcTaint) taintLHS(lhs ast.Expr, bits uint8) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	return ft.taintObj(ft.fd.Pkg.Info.ObjectOf(id), bits)
}

// rootIdent unwraps slicing/indexing/parens/&x down to the base
// identifier, if any — copy(dst[:], src) taints dst.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// propagate runs one pass over the body, flowing taint through
// assignments, declarations, ranges and copy; reports change.
func (ft *funcTaint) propagate() bool {
	info := ft.fd.Pkg.Info
	changed := false
	ast.Inspect(ft.fd.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				// Multi-assign from one call: per-result colors.
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					bits := ft.ti.calleeResultBits(ft.fd.Pkg, call)
					for i, lhs := range n.Lhs {
						if i < len(bits) && ft.taintLHS(lhs, bits[i]) {
							changed = true
						}
					}
					break
				}
				// Comma-ok / type-assert forms: value position only.
				bits := ft.exprTaint(n.Rhs[0])
				if ft.taintLHS(n.Lhs[0], bits) {
					changed = true
				}
				break
			}
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) && ft.taintLHS(lhs, ft.exprTaint(n.Rhs[i])) {
					changed = true
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 1 && len(n.Names) > 1 {
				if call, ok := ast.Unparen(n.Values[0]).(*ast.CallExpr); ok {
					bits := ft.ti.calleeResultBits(ft.fd.Pkg, call)
					for i, name := range n.Names {
						if i < len(bits) && ft.taintObj(info.ObjectOf(name), bits[i]) {
							changed = true
						}
					}
					break
				}
			}
			for i, name := range n.Names {
				if i < len(n.Values) && ft.taintObj(info.ObjectOf(name), ft.exprTaint(n.Values[i])) {
					changed = true
				}
			}
		case *ast.RangeStmt:
			if bits := ft.exprTaint(n.X); bits != 0 && n.Value != nil {
				if ft.taintLHS(n.Value, bits) {
					changed = true
				}
			}
		case *ast.CallExpr:
			if isBuiltinCall(info, n, "copy") && len(n.Args) == 2 {
				if bits := ft.exprTaint(n.Args[1]); bits != 0 {
					if dst := rootIdent(n.Args[0]); dst != nil {
						if ft.taintObj(info.ObjectOf(dst), bits) {
							changed = true
						}
					}
				}
			}
		}
		return true
	})
	return changed
}

// returnBits collects the per-result colors this function's return
// statements can carry (returns inside function literals belong to the
// literal, not to the declaration, and are excluded).
func (ft *funcTaint) returnBits() []uint8 {
	results := ft.fd.Fn.Signature().Results()
	if results.Len() == 0 {
		return nil
	}
	bits := make([]uint8, results.Len())
	ast.Inspect(ft.fd.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			switch {
			case len(n.Results) == 0:
				// Naked return: named results carry whatever was
				// assigned to them.
				for i := 0; i < results.Len(); i++ {
					bits[i] |= ft.tainted[results.At(i)]
				}
			case len(n.Results) == 1 && results.Len() > 1:
				// return f() pass-through.
				if call, ok := ast.Unparen(n.Results[0]).(*ast.CallExpr); ok {
					for i, b := range ft.ti.calleeResultBits(ft.fd.Pkg, call) {
						if i < len(bits) {
							bits[i] |= b
						}
					}
				}
			default:
				for i, r := range n.Results {
					if i < len(bits) {
						bits[i] |= ft.exprTaint(r)
					}
				}
			}
		}
		return true
	})
	return bits
}
