package analysis

import "fmt"

// Checker is one invariant pass over a loaded program.
type Checker interface {
	Name() string
	Check(p *Program) []Finding
}

// Checkers returns the full shieldvet suite in stable order.
func Checkers() []Checker {
	return []Checker{
		trustedMemChecker{},
		noPanicChecker{},
		boundaryCostChecker{},
		partitionChecker{},
		keyflowChecker{},
		keylifeChecker{},
	}
}

// Run executes the named checkers (all of them when names is empty) and
// returns the merged, sorted findings.
func Run(p *Program, names ...string) ([]Finding, error) {
	suite := Checkers()
	selected := suite
	if len(names) > 0 {
		byName := map[string]Checker{}
		for _, c := range suite {
			byName[c.Name()] = c
		}
		selected = selected[:0]
		for _, name := range names {
			c, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("analysis: unknown checker %q", name)
			}
			selected = append(selected, c)
		}
	}
	var findings []Finding
	for _, c := range selected {
		findings = append(findings, c.Check(p)...)
	}
	sortFindings(findings)
	return findings, nil
}
