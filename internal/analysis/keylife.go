package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// keylifeChecker enforces key-material lifecycle hygiene: every local
// that OWNS secret bytes must reach one of the discharge points below on
// every path out of the function.
//
// An obligation arises when a local variable is:
//
//   - assigned the result of a function explicitly annotated //ss:secret
//     (DeriveKey, ExportKeys, derive, ...) — unless that function is also
//     //ss:keylife-ok, which marks a borrowed view (secret.Buffer.Bytes:
//     the Buffer owns the wipe, the slice owes nothing);
//   - declared with a //ss:secret named type (var k entry.Keys): the
//     zero value will be filled with key material in place.
//
// An obligation is discharged by:
//
//   - a call to a //ss:wipes function with the local as receiver or
//     argument (k.Wipe(), secret.WipeBytes(k[:]), secret.From(k[:]));
//     a DEFERRED wipe discharges every path at once;
//   - returning the local (ownership transfers to the caller);
//   - storing the local into a field, element, or composite literal
//     (ownership transfers to the containing object, whose Close/Wipe
//     is a separate audited path).
//
// Two findings beyond "never discharged": a plain (non-deferred) wipe
// with a `return` between obligation and wipe leaks the key on the
// early exit; and sync.Pool.Put of an un-wiped obligation plants key
// bytes in a recycled buffer. Escape hatch: //ss:keylife-ok(reason) on
// the enclosing function.
type keylifeChecker struct{}

func (keylifeChecker) Name() string { return "keylife" }

func (keylifeChecker) Check(p *Program) []Finding {
	var findings []Finding
	for _, fd := range sortedDecls(p) {
		if p.Annot.FuncOrPkgHas(fd.Fn, DirKeyLifeOK) {
			continue
		}
		findings = append(findings, checkKeylife(p, fd)...)
	}
	return findings
}

// obligation is one local owing a wipe.
type obligation struct {
	obj   types.Object
	name  string
	pos   token.Pos
	scope span // innermost function literal owning the obligation
}

// span delimits a function literal's body; the zero span means the
// declaration's own body.
type span struct{ lo, hi token.Pos }

func (s span) contains(pos token.Pos) bool { return s.lo <= pos && pos < s.hi }

// discharge records one way an obligation's secret can leave the frame.
type discharge struct {
	pos      token.Pos
	deferred bool
	wipe     bool // a //ss:wipes call (vs. a return/store handoff)
}

// secretProducer reports whether a call's resolved callee is explicitly
// //ss:secret without the //ss:keylife-ok borrow marker.
func secretProducer(p *Program, info *types.Info, call *ast.CallExpr) bool {
	callee := calleeOf(info, call)
	if callee == nil {
		return false
	}
	return p.Annot.FuncHas(callee, DirSecret) && !p.Annot.FuncHas(callee, DirKeyLifeOK)
}

// usesObj reports whether the object appears anywhere inside the
// expression tree.
func usesObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func checkKeylife(p *Program, fd *FuncDecl) []Finding {
	info := fd.Pkg.Info

	// Function-literal spans: obligations and their discharges must live
	// in the same (innermost) literal, or both in the declaration body.
	var lits []span
	ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, span{fl.Body.Pos(), fl.Body.End()})
		}
		return true
	})
	scopeOf := func(pos token.Pos) span {
		best := span{} // declaration body
		for _, l := range lits {
			if l.contains(pos) && (best.lo == token.NoPos || l.lo > best.lo) {
				best = l
			}
		}
		return best
	}

	// Pass 1: collect obligations.
	var obls []*obligation
	addObl := func(id *ast.Ident) {
		if id == nil || id.Name == "_" {
			return
		}
		obj := info.ObjectOf(id)
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || v.Parent() == fd.Pkg.Types.Scope() {
			return
		}
		for _, o := range obls {
			if o.obj == obj {
				return
			}
		}
		obls = append(obls, &obligation{obj: obj, name: id.Name, pos: id.Pos(), scope: scopeOf(id.Pos())})
	}
	ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok || !secretProducer(p, info, call) {
				return true
			}
			for _, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue // field/element store: ownership already moved
				}
				if tv, ok := info.Types[lhs]; ok && isErrorType(tv.Type) {
					continue
				}
				addObl(id)
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					if call, ok := ast.Unparen(n.Values[i]).(*ast.CallExpr); ok && secretProducer(p, info, call) {
						addObl(name)
					}
					continue
				}
				// var k SecretType — the zero value is about to be
				// filled with key material in place.
				if obj := info.ObjectOf(name); obj != nil && isSecretNamed(p, obj.Type()) {
					addObl(name)
				}
			}
		}
		return true
	})
	if len(obls) == 0 {
		return nil
	}

	// Pass 2: collect discharges and pool hand-offs per obligation,
	// with an explicit ancestor stack to spot deferred wipes.
	discharges := map[*obligation][]discharge{}
	var findings []Finding
	var stack []ast.Node
	inDefer := func() bool {
		for _, n := range stack {
			if _, ok := n.(*ast.DeferStmt); ok {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := calleeOf(info, n)
			if callee == nil {
				return true
			}
			wipes := p.Annot.FuncHas(callee, DirWipes)
			isPoolPut := callee.FullName() == "(*sync.Pool).Put"
			if !wipes && !isPoolPut {
				return true
			}
			for _, o := range obls {
				touches := false
				for _, arg := range n.Args {
					if usesObj(info, arg, o.obj) {
						touches = true
						break
					}
				}
				if !touches && wipes {
					// Method form: k.Wipe() — receiver inside Fun.
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && usesObj(info, sel.X, o.obj) {
						touches = true
					}
				}
				if !touches {
					continue
				}
				if isPoolPut {
					if !wipedBefore(discharges[o], n.Pos()) {
						findings = append(findings, p.newFinding("keylife", n.Pos(),
							"%s puts secret-tainted %s into a sync.Pool without wiping it first",
							fd.Fn.Name(), o.name))
					}
					// Wiped or not, the bytes left the frame: record the
					// hand-off so the verdict pass doesn't double-report.
					discharges[o] = append(discharges[o], discharge{pos: n.Pos()})
					continue
				}
				discharges[o] = append(discharges[o], discharge{pos: n.Pos(), deferred: inDefer(), wipe: true})
			}
		case *ast.ReturnStmt:
			sc := scopeOf(n.Pos())
			for _, o := range obls {
				if o.scope != sc {
					continue
				}
				for _, r := range n.Results {
					if usesObj(info, r, o.obj) {
						discharges[o] = append(discharges[o], discharge{pos: n.Pos()})
						break
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				switch ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					for _, o := range obls {
						if usesObj(info, n.Rhs[i], o.obj) {
							discharges[o] = append(discharges[o], discharge{pos: n.Pos()})
						}
					}
				}
			}
		case *ast.CompositeLit:
			for _, o := range obls {
				for _, elt := range n.Elts {
					if usesObj(info, elt, o.obj) {
						discharges[o] = append(discharges[o], discharge{pos: n.Pos()})
						break
					}
				}
			}
		}
		return true
	})

	// Pass 3: verdicts.
	for _, o := range obls {
		ds := discharges[o]
		if len(ds) == 0 {
			findings = append(findings, p.newFinding("keylife", o.pos,
				"secret-tainted %s in %s is never wiped or handed off; add a //ss:wipes call (defer %s.Wipe()) or //ss:keylife-ok(reason)",
				o.name, fd.Fn.Name(), o.name))
			continue
		}
		covered := false
		first := token.Pos(0)
		for _, d := range ds {
			if d.deferred {
				covered = true
			}
			if first == 0 || d.pos < first {
				first = d.pos
			}
		}
		if covered {
			continue
		}
		// Any return between the obligation and its first discharge, in
		// the same literal scope, escapes with the key still live.
		leakPos := token.NoPos
		ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || leakPos != token.NoPos {
				return leakPos == token.NoPos
			}
			if ret.Pos() <= o.pos || ret.Pos() >= first || scopeOf(ret.Pos()) != o.scope {
				return true
			}
			for _, r := range ret.Results {
				if usesObj(info, r, o.obj) {
					return true // this return IS a discharge
				}
			}
			leakPos = ret.Pos()
			return false
		})
		if leakPos != token.NoPos {
			findings = append(findings, p.newFinding("keylife", leakPos,
				"early return leaks secret-tainted %s before its wipe in %s; defer the wipe or //ss:keylife-ok(reason)",
				o.name, fd.Fn.Name()))
		}
	}
	return findings
}

// wipedBefore reports whether a wipe discharge precedes pos.
func wipedBefore(ds []discharge, pos token.Pos) bool {
	for _, d := range ds {
		if d.wipe && !d.deferred && d.pos < pos {
			return true
		}
	}
	return false
}

// isErrorType reports the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
