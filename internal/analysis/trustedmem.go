package analysis

import (
	"go/ast"
	"go/types"
)

// trustedMemChecker enforces ShieldStore's confidentiality boundary:
//
//  1. Calls to //ss:sink functions (writes into simulated memory, which is
//     host-visible unless proven otherwise) are only allowed from functions
//     audited as //ss:seals (writes sealed/MACed/non-secret bytes) or
//     //ss:enclave-write (target address is enclave-region memory).
//  2. Values of //ss:trusted types (key material, integrity roots) may only
//     be opened up — field access, indexing, conversion — inside trusted
//     packages or //ss:seals functions, and may only be passed to callees
//     declared in trusted packages or themselves annotated //ss:seals.
type trustedMemChecker struct{}

func (trustedMemChecker) Name() string { return "trustedmem" }

func (trustedMemChecker) Check(p *Program) []Finding {
	var findings []Finding
	for _, fd := range sortedDecls(p) {
		findings = append(findings, checkSinkCalls(p, fd)...)
		findings = append(findings, checkTrustedUses(p, fd)...)
	}
	return findings
}

// mayWriteSinks reports whether fn is audited to call sink functions.
func mayWriteSinks(p *Program, fn *types.Func) bool {
	return p.Annot.FuncOrPkgHas(fn, DirSeals) || p.Annot.FuncOrPkgHas(fn, DirEnclaveWrite)
}

// mayHandleTrusted reports whether fn may open up trusted values.
func mayHandleTrusted(p *Program, fn *types.Func) bool {
	if p.Annot.FuncOrPkgHas(fn, DirSeals) {
		return true
	}
	return fn.Pkg() != nil && p.Annot.PkgHas(fn.Pkg(), DirTrusted)
}

func checkSinkCalls(p *Program, fd *FuncDecl) []Finding {
	if mayWriteSinks(p, fd.Fn) {
		return nil
	}
	var findings []Finding
	ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(fd.Pkg.Info, call)
		if callee == nil || !p.Annot.FuncHas(callee, DirSink) {
			return true
		}
		// A sink package's own internals are the sink implementation.
		if callee.Pkg() == fd.Fn.Pkg() {
			return true
		}
		findings = append(findings, p.newFinding("trustedmem", call.Pos(),
			"%s writes into simulated memory via sink %s without //ss:seals or //ss:enclave-write audit",
			fd.Fn.Name(), callee.FullName()))
		return true
	})
	return findings
}

// isTrustedType unwraps pointers and reports whether the named type's
// declaration carries //ss:trusted.
func isTrustedType(p *Program, t types.Type) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return p.Annot.TypeHas(named.Obj(), DirTrusted)
}

// calleeAcceptsTrusted reports whether passing a trusted value to this
// call is approved: the callee lives in a //ss:trusted package or is an
// audited //ss:seals function.
func calleeAcceptsTrusted(p *Program, info *types.Info, call *ast.CallExpr) bool {
	callee := calleeOf(info, call)
	if callee == nil {
		return false
	}
	if p.Annot.FuncOrPkgHas(callee, DirSeals) {
		return true
	}
	return callee.Pkg() != nil && p.Annot.PkgHas(callee.Pkg(), DirTrusted)
}

func checkTrustedUses(p *Program, fd *FuncDecl) []Finding {
	if mayHandleTrusted(p, fd.Fn) {
		return nil
	}
	info := fd.Pkg.Info
	var findings []Finding
	var stack []ast.Node
	ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := info.Types[expr]
		if !ok || !tv.IsValue() || !isTrustedType(p, tv.Type) {
			return true
		}
		if len(stack) < 2 {
			return true
		}
		switch parent := stack[len(stack)-2].(type) {
		case *ast.SelectorExpr:
			if parent.X != expr {
				return true
			}
			if sel, ok := info.Selections[parent]; ok && sel.Kind() != types.FieldVal {
				return true // method call; the callee check below applies to it
			}
			findings = append(findings, p.newFinding("trustedmem", parent.Pos(),
				"%s opens field %s of //ss:trusted type outside a seal path",
				fd.Fn.Name(), parent.Sel.Name))
		case *ast.IndexExpr:
			if parent.X == expr {
				findings = append(findings, p.newFinding("trustedmem", parent.Pos(),
					"%s indexes a //ss:trusted value outside a seal path", fd.Fn.Name()))
			}
		case *ast.SliceExpr:
			if parent.X == expr {
				findings = append(findings, p.newFinding("trustedmem", parent.Pos(),
					"%s slices a //ss:trusted value outside a seal path", fd.Fn.Name()))
			}
		case *ast.CallExpr:
			if parent.Fun == expr {
				return true
			}
			if funTV, ok := info.Types[parent.Fun]; ok && funTV.IsType() {
				findings = append(findings, p.newFinding("trustedmem", parent.Pos(),
					"%s converts a //ss:trusted value outside a seal path", fd.Fn.Name()))
				return true
			}
			if isBuiltinCall(info, parent, "len") || isBuiltinCall(info, parent, "cap") {
				return true
			}
			if !calleeAcceptsTrusted(p, info, parent) {
				name := "a function value"
				if callee := calleeOf(info, parent); callee != nil {
					name = callee.FullName()
				}
				findings = append(findings, p.newFinding("trustedmem", parent.Pos(),
					"%s passes a //ss:trusted value to %s, which is not an approved seal path",
					fd.Fn.Name(), name))
			}
		}
		return true
	})
	return findings
}

// sortedDecls returns the module's function declarations in deterministic
// source order.
func sortedDecls(p *Program) []*FuncDecl {
	var out []*FuncDecl
	for _, pkg := range p.Packages {
		for _, file := range pkg.Syntax {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					if d := p.Decls[fn]; d != nil {
						out = append(out, d)
					}
				}
			}
		}
	}
	return out
}
