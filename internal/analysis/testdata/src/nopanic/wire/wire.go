// Package wire exercises the nopanic checker: panics, unchecked type
// assertions and unguarded computed indexing reachable from //ss:attacker
// roots are findings; comma-ok forms, len() guards, sync.Pool asserts and
// //ss:nopanic-ok exemptions are not.
package wire

import "sync"

// Decode is the attacker-facing entry point.
//
//ss:attacker
func Decode(b []byte) int {
	if len(b) < 4 {
		return 0
	}
	n := helperPanic(b)
	n += helperAssert(n)
	n += helperIndex(b, n)
	n += helperOK(b)
	n += pooled()
	n += int(audited(b, 0))
	return n
}

func helperPanic(b []byte) int {
	if b[0] == 0xff {
		panic("bad frame") // want `panic in helperPanic is reachable from attacker entry Decode`
	}
	return int(b[0])
}

func helperAssert(n int) int {
	var v any = n
	return v.(int) // want `unchecked type assertion in helperAssert is reachable from attacker entry Decode`
}

func helperIndex(b []byte, n int) int {
	return int(b[n*2]) // want `computed index without len\(\) guard in helperIndex is reachable from attacker entry Decode`
}

// helperOK shows the approved forms: comma-ok asserts and len guards.
func helperOK(b []byte) int {
	var v any = 1
	if n, ok := v.(int); ok && len(b) > n+1 {
		return int(b[n+1])
	}
	return 0
}

var pool = sync.Pool{New: func() any { b := make([]byte, 16); return &b }}

// pooled shows the sync.Pool Get exemption: pools are type-homogeneous
// by construction, so the assertion cannot fail on attacker input.
func pooled() int {
	bp := pool.Get().(*[]byte)
	defer pool.Put(bp)
	return len(*bp)
}

// unreachable panics but no attacker root reaches it — no finding.
func unreachable() {
	panic("constructor contract")
}

// audited is reachable but carries an audited exemption.
//
//ss:nopanic-ok(corpus: bounds are validated by the caller)
func audited(b []byte, n int) byte {
	return b[n+1]
}
