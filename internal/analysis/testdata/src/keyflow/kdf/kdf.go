// Package kdf is the corpus stand-in for enclave key derivation: the
// secret/authn producers the keyflow taint engine seeds from.
package kdf

// Key is raw key material by type: every value is secret-tainted.
//
//ss:secret
type Key [16]byte

// Creds carries a secret field next to a public one.
type Creds struct {
	ID   string
	Seed []byte //ss:secret
}

// Derive returns fresh raw key bytes.
//
//ss:secret
func Derive() []byte { return make([]byte, 16) }

// Tag returns an authenticated MAC tag.
//
//ss:authn
func Tag(msg []byte) [16]byte { return [16]byte{byte(len(msg))} }

// Read mirrors the value-log record reader: the key result is
// authenticated material, the val result is plain user data. The
// directive's leading result name scopes the color.
//
//ss:authn(key — the record key is authenticated; the value is user data)
func Read() (key, val []byte, err error) { return nil, nil, nil }

// Seal encrypts b. Call results are never tainted by their arguments,
// so routing key material through Seal launders the taint by
// construction — exactly the audited path keyflow wants.
func Seal(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
