// Package app exercises every keyflow diagnostic and escape hatch.
package app

import (
	"bytes"
	"crypto/subtle"
	"fmt"
	"log"
	"os"

	"corpus/kdf"
	"corpus/memsim"
)

// LeakSink drops raw key bytes into host-visible memory with no audit.
func LeakSink() {
	key := kdf.Derive()
	memsim.Write(64, key) // want `LeakSink passes secret-tainted bytes into sink corpus/memsim.Write`
}

// StoreSealed is an audited seal path, so the sink call is approved.
//
//ss:seals — corpus: writes MACed bytes only.
func StoreSealed() {
	key := kdf.Derive()
	memsim.Write(64, key)
}

// StoreEnclave targets enclave-region addresses, where plaintext is fine.
//
//ss:enclave-write
func StoreEnclave() {
	key := kdf.Derive()
	memsim.Write(0, key)
}

// WriteHost persists raw key bytes to the host filesystem.
func WriteHost() {
	key := kdf.Derive()
	os.WriteFile("key.bin", key, 0o600) // want `WriteHost writes secret-tainted bytes to host I/O via os.WriteFile`
}

// WriteSealed persists the sealed form: Seal's result carries no taint,
// so the laundering is structural, not annotated.
func WriteSealed() {
	key := kdf.Derive()
	os.WriteFile("key.sealed", kdf.Seal(key), 0o600)
}

// LogKey formats raw key bytes into host-visible stdout.
func LogKey() {
	key := kdf.Derive()
	fmt.Printf("key=%x\n", key) // want `LogKey formats secret-tainted bytes via fmt.Printf`
}

// LogKeyStdLog does the same through the log package.
func LogKeyStdLog() {
	key := kdf.Derive()
	log.Println("derived", key) // want `LogKeyStdLog formats secret-tainted bytes via log.Println`
}

// LogLen logs only the length: len() launders taint, a key's size is
// public.
func LogLen() {
	key := kdf.Derive()
	log.Printf("derived %d key bytes", len(key))
}

// CompareKey leaks the first differing byte's position through timing.
func CompareKey(x []byte) bool {
	key := kdf.Derive()
	return bytes.Equal(key, x) // want `CompareKey compares secret/authenticated material via bytes.Equal`
}

// CompareCT is the approved spelling.
func CompareCT(x []byte) bool {
	key := kdf.Derive()
	return subtle.ConstantTimeCompare(key, x) == 1
}

// CtOK is the audited escape hatch for a legitimate variable-time use.
//
//ss:ct-ok(corpus: compares against a public published test vector)
func CtOK(x []byte) bool {
	key := kdf.Derive()
	return bytes.Equal(key, x)
}

// CompareTag compares authenticated material (a MAC tag) with ==: the
// tag itself is public, but the comparison leaks the verifier's
// expected tag byte by byte.
func CompareTag(msg []byte, got [16]byte) bool {
	want := kdf.Tag(msg)
	return want == got // want `CompareTag compares secret/authenticated material with ==`
}

// VerifyMAC mirrors the defect keyflow found in the real store: a
// freshly computed tag compared against the stored one with != leaks
// the match position on the read path.
func VerifyMAC(msg []byte, stored [16]byte) bool {
	want := kdf.Tag(msg)
	if want != stored { // want `VerifyMAC compares secret/authenticated material with !=`
		return false
	}
	return true
}

// TypedKey is tainted by its parameter's //ss:secret named type alone.
func TypedKey(k kdf.Key) bool {
	var zero kdf.Key
	return k == zero // want `TypedKey compares secret/authenticated material with ==`
}

// FieldKey is tainted through the //ss:secret struct field; the public
// sibling field compares freely.
func FieldKey(c kdf.Creds, x []byte) bool {
	if c.ID == "public" {
		return false
	}
	return bytes.Equal(c.Seed, x) // want `FieldKey compares secret/authenticated material via bytes.Equal`
}

// NilCheck is identity, not content: slice/pointer comparisons carry no
// timing side channel over the bytes.
func NilCheck() bool {
	key := kdf.Derive()
	return key != nil
}

// ScopedRead mirrors the defect keyflow found in the real value log:
// the record key returned by Read must be compared in constant time,
// while the record VALUE — scoped out of the //ss:authn(key — ...)
// directive — is plain user data, and errors never carry taint.
func ScopedRead(x []byte) bool {
	rkey, val, err := kdf.Read()
	if err != nil {
		return false
	}
	if bytes.Equal(val, x) {
		return false
	}
	return bytes.Equal(rkey, x) // want `ScopedRead compares secret/authenticated material via bytes.Equal`
}
