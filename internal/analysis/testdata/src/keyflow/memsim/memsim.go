// Package memsim is the corpus stand-in for host-visible simulated memory.
package memsim

import "corpus/kdf"

// Write copies b into simulated memory at addr.
//
//ss:sink
func Write(addr uint64, b []byte) {}

// fill exercises the own-package exemption: the sink package's internals
// are the sink implementation and may call it freely, key bytes or not.
func fill() { Write(0, kdf.Derive()) }
