// Package app is untrusted glue code exercising the trustedmem rules.
package app

import (
	"corpus/keys"
	"corpus/memsim"
)

// Leak writes unsealed bytes into host-visible memory with no audit.
func Leak(b []byte) {
	memsim.Write(64, b) // want `Leak writes into simulated memory via sink corpus/memsim.Write`
}

// StoreSealed is an audited seal path, so the sink call is approved.
//
//ss:seals — corpus: writes MACed bytes only.
func StoreSealed(b []byte) {
	memsim.Write(64, b)
}

// StoreEnclave targets enclave-region addresses, where plaintext is fine.
//
//ss:enclave-write
func StoreEnclave(b []byte) {
	memsim.Write(0, b)
}

// Peek opens trusted key material outside a seal path.
func Peek(k keys.Keys) byte {
	return k.Data[0] // want `Peek opens field Data of //ss:trusted type`
}

// Give hands trusted keys to an unapproved function.
func Give(k keys.Keys) {
	use(k) // want `Give passes a //ss:trusted value to corpus/app.use`
}

func use(keys.Keys) {}

// Export serializes keys on the audited seal path — no findings.
//
//ss:seals — corpus: the designated serializer.
func Export(k keys.Keys) []byte {
	out := make([]byte, 16)
	copy(out, k.Data[:])
	return out
}

// Forward passes keys into the trusted package, which is allowed.
func Forward(k *keys.Keys) {
	keys.Wipe(k)
}
