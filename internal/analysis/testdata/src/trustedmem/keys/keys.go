// Package keys declares the corpus trusted key material.
//
//ss:trusted
package keys

// Keys is enclave-only key material.
//
//ss:trusted
type Keys struct {
	Data [16]byte
}

// Wipe runs inside the trusted package, so opening fields is allowed.
func Wipe(k *Keys) {
	for i := range k.Data {
		k.Data[i] = 0
	}
}
