// Package memsim is the corpus stand-in for host-visible simulated memory.
package memsim

// Write copies b into simulated memory at addr.
//
//ss:sink
func Write(addr uint64, b []byte) {}

// fill exercises the own-package exemption: a sink package's internals
// are the sink implementation and may call it freely.
func fill() { Write(0, nil) }
