// Package pool exercises the partition no-sharing discipline:
// //ss:partitioned fields may only be indexed, ranged, reassigned or
// aliased from //ss:xpart control-plane functions.
package pool

// Pool is the corpus stand-in for the partitioned deployment.
type Pool struct {
	//ss:partitioned
	parts []int // per-worker state; each worker owns exactly one slot
	name  string
}

// Start hands each worker its slot from the dispatch plane.
//
//ss:xpart — corpus control plane.
func (p *Pool) Start() {
	for i := range p.parts {
		p.parts[i] = i
	}
}

// Steal reaches into a sibling partition from worker code.
func (p *Pool) Steal(i int) int {
	return p.parts[i] // want `Steal indexes //ss:partitioned field parts outside the dispatch plane`
}

// Sweep iterates every partition outside the dispatch plane.
func (p *Pool) Sweep() int {
	total := 0
	for _, v := range p.parts { // want `Sweep ranges over //ss:partitioned field parts outside the dispatch plane`
		total += v
	}
	return total
}

// Reset replaces the partition set outside the dispatch plane.
func (p *Pool) Reset() {
	p.parts = nil // want `Reset reassigns //ss:partitioned field parts outside the dispatch plane`
}

// Share leaks the whole partition slice to an arbitrary callee.
func (p *Pool) Share() {
	consume(p.parts) // want `Share aliases //ss:partitioned field parts outside the dispatch plane`
}

func consume([]int) {}

// Size only takes len, which is allowed anywhere.
func (p *Pool) Size() int {
	return len(p.parts)
}

// Name touches a non-partitioned field freely.
func (p *Pool) Name() string {
	return p.name
}
