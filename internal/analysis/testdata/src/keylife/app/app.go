// Package app exercises every keylife diagnostic and escape hatch.
package app

import (
	"errors"
	"sync"

	"corpus/kdf"
)

var errFail = errors.New("corpus: failed")

func use(b []byte) bool { return len(b) > 0 }

// Forget derives a key and drops it on the floor: the bytes outlive
// their use un-zeroed.
func Forget() {
	key := kdf.Derive() // want `secret-tainted key in Forget is never wiped or handed off`
	use(key)
}

// DeferWipe is the canonical clean shape: a deferred wipe discharges
// every path at once, early returns included.
func DeferWipe() error {
	key := kdf.Derive()
	defer kdf.WipeBytes(key)
	if use(key) {
		return errFail
	}
	return nil
}

// EarlyReturn wipes on the happy path only: the error exit leaks the
// live key.
func EarlyReturn(fail bool) error {
	key := kdf.Derive()
	if fail {
		return errFail // want `early return leaks secret-tainted key before its wipe in EarlyReturn`
	}
	kdf.WipeBytes(key)
	return nil
}

// Handoff transfers ownership to the caller: the obligation moves with
// the return value.
func Handoff() []byte {
	key := kdf.Derive()
	return key
}

type holder struct {
	k []byte
}

// StoreField transfers ownership into a containing object, whose own
// Close/Wipe is a separately audited path.
func StoreField(h *holder) {
	key := kdf.Derive()
	h.k = key
}

// Pack transfers ownership through a composite literal.
func Pack() *holder {
	key := kdf.Derive()
	return &holder{k: key}
}

var pool = sync.Pool{New: func() any { return []byte(nil) }}

// PoolLeak plants live key bytes in a recycled buffer.
func PoolLeak() {
	key := kdf.Derive()
	pool.Put(key) // want `PoolLeak puts secret-tainted key into a sync.Pool without wiping it first`
}

// PoolClean wipes before recycling.
func PoolClean() {
	key := kdf.Derive()
	kdf.WipeBytes(key)
	pool.Put(key)
}

// Exempt is the audited body-level escape hatch.
//
//ss:keylife-ok(corpus: the derived bytes are a compiled-in public test vector)
func Exempt() {
	key := kdf.Derive()
	use(key)
}

// UseBorrow holds a borrowed view: Borrow is //ss:keylife-ok, so no
// obligation arises here.
func UseBorrow() {
	view := kdf.Borrow()
	use(view)
}

// ZeroFill declares a secret-typed value — an obligation even with no
// producer call, because the zero value is filled in place — and never
// wipes it.
func ZeroFill() {
	var k kdf.Keys // want `secret-tainted k in ZeroFill is never wiped or handed off`
	use(k.Data[:])
}

// ZeroFillWiped is the clean spelling: a deferred method-form wipe.
func ZeroFillWiped() {
	var k kdf.Keys
	defer k.Wipe()
	use(k.Data[:])
}

// Checked shows errors carry no obligation, and the deferred wipe
// covers the error exit (where the key is empty anyway).
func Checked() error {
	key, err := kdf.DeriveChecked()
	if err != nil {
		return err
	}
	defer kdf.WipeBytes(key)
	use(key)
	return nil
}

// InClosure scopes obligations per function literal: the closure owns
// and discharges its own key.
func InClosure() func() {
	return func() {
		key := kdf.Derive()
		defer kdf.WipeBytes(key)
		use(key)
	}
}

// ClosureForget leaks inside the literal: the discharge scan does not
// credit the OUTER function's returns to the closure's obligation.
func ClosureForget() func() {
	return func() {
		key := kdf.Derive() // want `secret-tainted key in ClosureForget is never wiped or handed off`
		use(key)
	}
}
