// Package kdf is the corpus stand-in for enclave key derivation and the
// wipe primitives the keylife checker tracks obligations against.
package kdf

// Keys is raw key material by type: declaring a value creates a wipe
// obligation, because the zero value is about to be filled in place.
//
//ss:secret
type Keys struct {
	Data [16]byte
}

// Wipe zeroes the keys.
//
//ss:wipes
func (k *Keys) Wipe() {
	for i := range k.Data {
		k.Data[i] = 0
	}
}

// Derive returns fresh raw key bytes the caller now owns.
//
//ss:secret
func Derive() []byte { return make([]byte, 16) }

// DeriveChecked is the fallible variant: the error result never carries
// an obligation.
//
//ss:secret
func DeriveChecked() ([]byte, error) { return make([]byte, 16), nil }

// Borrow hands out a view of key material someone else owns: callers
// owe no wipe.
//
//ss:secret
//ss:keylife-ok(borrowed view: the owner wipes, callers of Borrow owe nothing)
func Borrow() []byte { return nil }

// WipeBytes zeroes b in place.
//
//ss:wipes
func WipeBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
