// Package vtier is a miniature value-log: the tiered-storage shape the
// checker must police. Sealed records live in segment files on untrusted
// disk, so every ReadAt/WriteAt/Sync is host I/O — either annotated as a
// charged crossing or flagged.
package vtier

import (
	"os"

	"corpus/sgxsim"
)

// Log is a trimmed-down segmented value log.
type Log struct {
	tail *os.File
}

// Append seals a record onto the tail segment: annotated and charged, the
// way internal/vlog does it.
//
//ss:ocall
func (l *Log) Append(rec []byte) error {
	_, err := l.tail.WriteAt(rec, 0)
	sgxsim.Charge()
	return err
}

// ReadRaw fetches sealed bytes without declaring the crossing — an
// unmodeled disk read that would silently skew every throughput figure.
func (l *Log) ReadRaw(off int64, n int) ([]byte, error) {
	buf := make([]byte, n)
	_, err := l.tail.ReadAt(buf, off) // want `ReadRaw calls \(\*os\.File\)\.ReadAt without //ss:ocall, //ss:ecall, or //ss:host annotation`
	return buf, err
}

// SyncQuiet declares the crossing but never charges it — the fsync
// happens, the cost model never hears about it.
//
//ss:ocall
func (l *Log) SyncQuiet() error { // want `SyncQuiet is annotated //ss:ocall but never charges an enclave crossing`
	return l.tail.Sync()
}

// OpenSegment runs at recovery time outside the measured window, so the
// host annotation exempts its raw file open.
//
//ss:host(corpus: segment open at recovery time, outside the measured window)
func OpenSegment(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, err
	}
	return &Log{tail: f}, nil
}
