// Package sgxsim provides the corpus crossing-cost primitive.
package sgxsim

// Charge models charging one enclave crossing to the cost model.
//
//ss:charges
func Charge() {}
