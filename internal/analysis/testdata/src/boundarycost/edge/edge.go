// Package edge exercises the boundarycost checker: annotated crossings
// must charge a //ss:charges primitive within two hops, and raw os/net
// use must be annotated //ss:ocall, //ss:ecall or //ss:host.
package edge

import (
	"net"
	"os"

	"corpus/sgxsim"
)

// Flush is a modeled OCALL that charges the crossing directly.
//
//ss:ocall
func Flush() {
	sgxsim.Charge()
}

// FlushIndirect charges through one intermediate hop, still within the
// checker's two-hop budget.
//
//ss:ocall
func FlushIndirect() {
	doFlush()
}

func doFlush() {
	sgxsim.Charge()
}

// Forgot is a crossing that never reaches the cost model.
//
//ss:ocall
func Forgot() { // want `Forgot is annotated //ss:ocall but never charges an enclave crossing`
}

// ReadState does host I/O without declaring any crossing.
func ReadState(path string) ([]byte, error) {
	return os.ReadFile(path) // want `ReadState calls os.ReadFile without //ss:ocall, //ss:ecall, or //ss:host annotation`
}

// Dial is declared host-side, so raw net use is exempt.
//
//ss:host(corpus: runs outside the simulated enclave)
func Dial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}

// Env uses an allowlisted benign call — no syscall-shaped cost to model.
func Env() string {
	return os.Getenv("CORPUS")
}
