package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Annotation directive names. Directives are comment lines of the form
// //ss:name or //ss:name(free-form reason), attached to the package doc,
// a declaration doc, or a struct field.
const (
	// DirTrusted marks a package or named type whose values carry enclave
	// secrets (plaintext buffers, key material, integrity roots).
	DirTrusted = "trusted"
	// DirUntrusted marks the package modeling host-visible memory.
	DirUntrusted = "untrusted"
	// DirSink marks a function whose final slice parameter is written into
	// simulated memory (host-visible unless the caller proves otherwise).
	DirSink = "sink"
	// DirSeals marks a function (or whole package) audited to pass only
	// sealed/MACed/non-secret bytes into sinks, and to be a legitimate
	// handler of DirTrusted values.
	DirSeals = "seals"
	// DirEnclaveWrite marks a function whose sink writes target
	// enclave-region addresses, where plaintext is allowed.
	DirEnclaveWrite = "enclave-write"
	// DirAttacker marks an attacker-reachable entry point: a nopanic root.
	DirAttacker = "attacker"
	// DirNoPanicOK exempts a function from the nopanic checker.
	DirNoPanicOK = "nopanic-ok"
	// DirOCall / DirECall mark boundary-crossing functions that must charge
	// the sim cost model.
	DirOCall = "ocall"
	DirECall = "ecall"
	// DirCharges marks the crossing-cost primitives themselves.
	DirCharges = "charges"
	// DirHost marks a function or package that runs host-side (outside the
	// enclave and outside the measured window), exempting its raw I/O.
	DirHost = "host"
	// DirPartitioned marks a struct field holding per-partition mutable
	// state that only the dispatch plane may index.
	DirPartitioned = "partitioned"
	// DirXPart marks control-plane functions allowed to access
	// DirPartitioned fields across partitions.
	DirXPart = "xpart"
	// DirSecret marks raw key material: a function whose result is secret
	// bytes (derived keys, exported key bundles), a named type whose
	// values are key material, or a struct field holding it. Secret taint
	// drives the keyflow rules (no sinks, no host I/O, no logging, no
	// variable-time comparison) and seeds keylife wipe obligations.
	DirSecret = "secret"
	// DirAuthn marks a function whose result is authenticated material
	// (MAC tags, keyed digests). Authn taint drives only the
	// constant-time-comparison rule: tags are public, but comparing them
	// with variable-time equality leaks the verifier's secret-derived
	// expectation byte by byte. For DirSecret and DirAuthn on functions
	// with several named results, the directive argument may begin with
	// the result name(s) the color applies to — //ss:authn(key — ...)
	// colors only the `key` result; without a leading result name every
	// non-error result is colored.
	DirAuthn = "authn"
	// DirWipes marks a wipe primitive: calling it discharges the keylife
	// obligation of the secret value passed in (or of its receiver).
	DirWipes = "wipes"
	// DirCTOK exempts a function from the constant-time-comparison rule,
	// with a stated reason.
	DirCTOK = "ct-ok"
	// DirKeyLifeOK has two roles: on a function that RETURNS secret
	// material, it marks the result as a borrowed view (the owner wipes;
	// callers owe nothing); on any other function, it exempts the
	// function's own body from keylife obligations, with a stated reason.
	DirKeyLifeOK = "keylife-ok"
)

const directivePrefix = "//ss:"

// Annotations indexes every //ss: directive in a program by the object it
// annotates.
type Annotations struct {
	Funcs  map[*types.Func]map[string]string
	Types  map[*types.TypeName]map[string]string
	Fields map[*types.Var]map[string]string
	Pkgs   map[*types.Package]map[string]string
}

func parseDirectiveLine(line string) (name, arg string, ok bool) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(line), directivePrefix)
	if !ok {
		return "", "", false
	}
	// The name is a lowercase-kebab identifier; anything after it — a
	// parenthesized argument or free prose after a dash — is the reason.
	i := 0
	for i < len(rest) && (rest[i] == '-' || ('a' <= rest[i] && rest[i] <= 'z')) {
		i++
	}
	name, rest = rest[:i], strings.TrimSpace(rest[i:])
	if name == "" {
		return "", "", false
	}
	if strings.HasPrefix(rest, "(") && strings.HasSuffix(rest, ")") {
		return name, rest[1 : len(rest)-1], true
	}
	return name, strings.TrimLeft(rest, "—- "), true
}

func directivesOf(groups ...*ast.CommentGroup) map[string]string {
	var out map[string]string
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if name, arg, ok := parseDirectiveLine(c.Text); ok && name != "" {
				if out == nil {
					out = map[string]string{}
				}
				out[name] = arg
			}
		}
	}
	return out
}

func mergeInto(dst, src map[string]string) map[string]string {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = map[string]string{}
	}
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// collectAnnotations walks every package's syntax, binding directives to
// type-checker objects.
func collectAnnotations(pkgs []*Package) *Annotations {
	a := &Annotations{
		Funcs:  map[*types.Func]map[string]string{},
		Types:  map[*types.TypeName]map[string]string{},
		Fields: map[*types.Var]map[string]string{},
		Pkgs:   map[*types.Package]map[string]string{},
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			if d := directivesOf(file.Doc); d != nil {
				a.Pkgs[pkg.Types] = mergeInto(a.Pkgs[pkg.Types], d)
			}
			for _, decl := range file.Decls {
				switch decl := decl.(type) {
				case *ast.FuncDecl:
					if d := directivesOf(decl.Doc); d != nil {
						if fn, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok {
							a.Funcs[fn] = mergeInto(a.Funcs[fn], d)
						}
					}
				case *ast.GenDecl:
					for _, spec := range decl.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						if d := directivesOf(decl.Doc, ts.Doc, ts.Comment); d != nil {
							if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
								a.Types[tn] = mergeInto(a.Types[tn], d)
							}
						}
						if st, ok := ts.Type.(*ast.StructType); ok {
							a.collectFields(pkg, st)
						}
					}
				}
			}
		}
	}
	return a
}

func (a *Annotations) collectFields(pkg *Package, st *ast.StructType) {
	for _, field := range st.Fields.List {
		d := directivesOf(field.Doc, field.Comment)
		if d == nil {
			continue
		}
		for _, name := range field.Names {
			if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
				a.Fields[v] = mergeInto(a.Fields[v], d)
			}
		}
	}
}

// FuncHas reports whether fn itself carries the directive.
func (a *Annotations) FuncHas(fn *types.Func, name string) bool {
	_, ok := a.Funcs[fn][name]
	return ok
}

// FuncArg returns a directive's argument text.
func (a *Annotations) FuncArg(fn *types.Func, name string) string {
	return a.Funcs[fn][name]
}

// PkgHas reports whether a package doc carries the directive.
func (a *Annotations) PkgHas(pkg *types.Package, name string) bool {
	_, ok := a.Pkgs[pkg][name]
	return ok
}

// FuncOrPkgHas reports whether fn or its defining package carries the
// directive (package-level directives apply to every function within).
func (a *Annotations) FuncOrPkgHas(fn *types.Func, name string) bool {
	if a.FuncHas(fn, name) {
		return true
	}
	return fn.Pkg() != nil && a.PkgHas(fn.Pkg(), name)
}

// TypeHas reports whether a named type's declaration carries the directive.
func (a *Annotations) TypeHas(tn *types.TypeName, name string) bool {
	_, ok := a.Types[tn][name]
	return ok
}

// FieldHas reports whether a struct field carries the directive.
func (a *Annotations) FieldHas(v *types.Var, name string) bool {
	_, ok := a.Fields[v][name]
	return ok
}
