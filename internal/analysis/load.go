// Package analysis implements shieldvet, a stdlib-only static analyzer
// that mechanizes ShieldStore's enclave-boundary trust invariants:
//
//   - trustedmem: plaintext and key material never reach untrusted memory
//     except through audited seal/MAC paths (//ss:seals, //ss:enclave-write),
//   - nopanic: no panic, unchecked type assertion, or unguarded computed
//     indexing is reachable from attacker-facing entry points (//ss:attacker),
//   - boundarycost: every enclave boundary crossing (//ss:ocall, //ss:ecall)
//     charges the sim cost model, and no host I/O happens unannotated,
//   - partition: partition-worker code never touches another partition's
//     mutable state (//ss:partitioned fields) outside the dispatch plane,
//   - keyflow: secret-tainted key material (//ss:secret) never reaches
//     sinks, host I/O, or fmt/log, and secret or authenticated bytes
//     (//ss:authn) are never compared with variable-time equality,
//   - keylife: every local owning secret bytes is wiped (//ss:wipes) or
//     handed off on every path out of its function.
//
// The analyzer is built exclusively on go/parser, go/ast, go/types and
// go/importer — no module dependencies — so it can run as a blocking CI
// job anywhere the repo builds. See DESIGN.md sections 11 and 16 for the
// full annotation vocabulary and checker semantics.
//
//ss:host(developer tool; runs outside the simulated machine)
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the loaded module.
type Package struct {
	Path   string // import path
	Dir    string // absolute directory
	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// LoadConfig parameterizes Load. Dir is the module root (or any corpus
// root); ModulePath overrides the module path when no go.mod is present
// (golden-corpus trees).
type LoadConfig struct {
	Dir        string
	ModulePath string
}

// Load parses and type-checks every non-test package under cfg.Dir,
// resolving intra-module imports from source and standard-library imports
// through the compiler's export data (falling back to source).
func Load(cfg LoadConfig) (*Program, error) {
	root, err := filepath.Abs(cfg.Dir)
	if err != nil {
		return nil, err
	}
	modPath := cfg.ModulePath
	if modPath == "" {
		modPath, err = modulePath(root)
		if err != nil {
			return nil, err
		}
	}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	parsed := map[string]*rawPkg{} // import path -> files
	for _, dir := range dirs {
		rp, err := parseDir(fset, root, dir, modPath)
		if err != nil {
			return nil, err
		}
		if rp != nil {
			parsed[rp.path] = rp
		}
	}

	order, err := topoSort(parsed, modPath)
	if err != nil {
		return nil, err
	}

	ld := &loader{
		fset:    fset,
		modPath: modPath,
		checked: map[string]*types.Package{},
		std:     importer.Default(),
	}
	prog := &Program{Fset: fset, ModulePath: modPath, Dir: root}
	for _, path := range order {
		rp := parsed[path]
		pkg, err := ld.check(rp)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	prog.init()
	return prog, nil
}

// modulePath reads the module directive from go.mod under root.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: cannot determine module path: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", root)
}

// packageDirs walks root collecting directories that contain buildable Go
// files, skipping testdata, hidden, and underscore-prefixed trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && isSourceFile(e.Name()) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

type rawPkg struct {
	path    string
	dir     string
	name    string
	files   []*ast.File
	imports []string // intra-module imports only
}

func parseDir(fset *token.FileSet, root, dir, modPath string) (*rawPkg, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && isSourceFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}

	rp := &rawPkg{path: path, dir: dir}
	seen := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if rp.name == "" {
			rp.name = f.Name.Name
		}
		rp.files = append(rp.files, f)
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if (p == modPath || strings.HasPrefix(p, modPath+"/")) && !seen[p] {
				seen[p] = true
				rp.imports = append(rp.imports, p)
			}
		}
	}
	return rp, nil
}

// topoSort orders packages so every intra-module import is checked before
// its importers.
func topoSort(pkgs map[string]*rawPkg, modPath string) ([]string, error) {
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(path string, stack []string) error
	visit = func(path string, stack []string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("analysis: import cycle: %s", strings.Join(append(stack, path), " -> "))
		case 2:
			return nil
		}
		rp, ok := pkgs[path]
		if !ok {
			return fmt.Errorf("analysis: missing module package %q", path)
		}
		state[path] = 1
		for _, imp := range rp.imports {
			if err := visit(imp, append(stack, path)); err != nil {
				return err
			}
		}
		state[path] = 2
		order = append(order, path)
		return nil
	}
	var roots []string
	for path := range pkgs {
		roots = append(roots, path)
	}
	sort.Strings(roots)
	for _, path := range roots {
		if err := visit(path, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// loader type-checks packages in dependency order, serving module imports
// from its own cache and delegating the rest to the standard importers.
type loader struct {
	fset    *token.FileSet
	modPath string
	checked map[string]*types.Package
	std     types.Importer
	source  types.Importer
}

// Import implements types.Importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		pkg, ok := ld.checked[path]
		if !ok {
			return nil, fmt.Errorf("analysis: module package %q not yet checked (import cycle?)", path)
		}
		return pkg, nil
	}
	pkg, err := ld.std.Import(path)
	if err == nil {
		return pkg, nil
	}
	// Fall back to type-checking the standard library from source — the
	// compiler export data may be absent on freshly installed toolchains.
	if ld.source == nil {
		ld.source = importer.ForCompiler(ld.fset, "source", nil)
	}
	return ld.source.Import(path)
}

func (ld *loader) check(rp *rawPkg) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var terrs []error
	conf := types.Config{
		Importer: ld,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(rp.path, ld.fset, rp.files, info)
	if len(terrs) > 0 {
		msgs := make([]string, 0, len(terrs))
		for i, e := range terrs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(terrs)-8))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("analysis: type errors in %s:\n  %s", rp.path, strings.Join(msgs, "\n  "))
	}
	ld.checked[rp.path] = tpkg
	return &Package{Path: rp.path, Dir: rp.dir, Syntax: rp.files, Types: tpkg, Info: info}, nil
}
