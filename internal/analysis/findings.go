package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
)

// Finding is one invariant violation reported by a checker.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Checker string `json:"checker"`
	Message string `json:"message"`
}

// String renders the greppable file:line:col: [checker] message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Checker, f.Message)
}

// newFinding builds a Finding at pos, with the file path made relative to
// the program root for stable output across machines.
func (p *Program) newFinding(checker string, pos token.Pos, format string, args ...any) Finding {
	position := p.Fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(p.Dir, file); err == nil {
		file = filepath.ToSlash(rel)
	}
	return Finding{
		File:    file,
		Line:    position.Line,
		Col:     position.Column,
		Checker: checker,
		Message: fmt.Sprintf(format, args...),
	}
}

// sortFindings orders findings by file, line, column, checker.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Checker < b.Checker
	})
}

// WriteText prints one finding per line in listing form.
func WriteText(w io.Writer, fs []Finding) error {
	for _, f := range fs {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON prints the findings as a JSON array (machine-readable CI mode).
func WriteJSON(w io.Writer, fs []Finding) error {
	if fs == nil {
		fs = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fs)
}
