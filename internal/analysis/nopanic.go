package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// noPanicChecker mechanizes the attacker-reachable panic audit: starting
// from //ss:attacker entry points (protocol decoders, server handlers,
// store operations on untrusted views, recovery paths), it walks the call
// graph and flags, in every reachable function:
//
//   - explicit panic() calls,
//   - type assertions without the comma-ok form,
//   - computed (arithmetic) indexing into slices/strings with no len()
//     guard anywhere in the function.
//
// A malicious host controls every byte in untrusted memory and on the
// wire, so any of these is a denial-of-service primitive. Functions whose
// panics are unreachable-by-construction carry //ss:nopanic-ok(reason).
type noPanicChecker struct{}

func (noPanicChecker) Name() string { return "nopanic" }

func (noPanicChecker) Check(p *Program) []Finding {
	roots := p.Roots(DirAttacker)
	if len(roots) == 0 {
		return nil
	}
	reach := p.Reachable(roots)
	var findings []Finding
	for _, fd := range sortedDecls(p) {
		root, ok := reach[fd.Fn]
		if !ok || p.Annot.FuncOrPkgHas(fd.Fn, DirNoPanicOK) {
			continue
		}
		findings = append(findings, checkPanicSites(p, fd, root)...)
	}
	return findings
}

func checkPanicSites(p *Program, fd *FuncDecl, root *types.Func) []Finding {
	info := fd.Pkg.Info
	okAsserts := commaOKAsserts(fd.Decl.Body)
	guards := lenGuards(fd.Decl.Body)
	var findings []Finding
	ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltinCall(info, n, "panic") {
				findings = append(findings, p.newFinding("nopanic", n.Pos(),
					"panic in %s is reachable from attacker entry %s; return a typed error or annotate //ss:nopanic-ok(reason)",
					fd.Fn.Name(), root.Name()))
			}
		case *ast.TypeAssertExpr:
			if n.Type != nil && !okAsserts[n] && !isPoolGetAssert(info, n) {
				findings = append(findings, p.newFinding("nopanic", n.Pos(),
					"unchecked type assertion in %s is reachable from attacker entry %s; use the comma-ok form",
					fd.Fn.Name(), root.Name()))
			}
		case *ast.IndexExpr:
			if unguardedIndex(info, guards, n.X, n.Index) {
				findings = append(findings, p.newFinding("nopanic", n.Pos(),
					"computed index without len() guard in %s is reachable from attacker entry %s",
					fd.Fn.Name(), root.Name()))
			}
		case *ast.SliceExpr:
			if unguardedIndex(info, guards, n.X, n.Low, n.High, n.Max) {
				findings = append(findings, p.newFinding("nopanic", n.Pos(),
					"computed slice bounds without len() guard in %s are reachable from attacker entry %s",
					fd.Fn.Name(), root.Name()))
			}
		}
		return true
	})
	return findings
}

// isPoolGetAssert recognizes the idiomatic pool.Get().(*T) pattern: a
// sync.Pool is type-homogeneous by construction, so the assertion cannot
// fail on attacker input and flagging it would only push a meaningless
// comma-ok branch into every pooled hot path.
func isPoolGetAssert(info *types.Info, ta *ast.TypeAssertExpr) bool {
	call, ok := ast.Unparen(ta.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	callee := calleeOf(info, call)
	if callee == nil || callee.Name() != "Get" || callee.Pkg() == nil {
		return false
	}
	recv := callee.Type().(*types.Signature).Recv()
	return callee.Pkg().Path() == "sync" && recv != nil
}

// commaOKAsserts collects the type assertions consumed in two-value form.
func commaOKAsserts(body *ast.BlockStmt) map[*ast.TypeAssertExpr]bool {
	ok := map[*ast.TypeAssertExpr]bool{}
	record := func(lhs int, rhs []ast.Expr) {
		if lhs == 2 && len(rhs) == 1 {
			if ta, is := ast.Unparen(rhs[0]).(*ast.TypeAssertExpr); is {
				ok[ta] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			record(len(n.Lhs), n.Rhs)
		case *ast.ValueSpec:
			record(len(n.Names), n.Values)
		}
		return true
	})
	return ok
}

// lenGuards collects the textual form of every expression that appears
// under len(...) anywhere in the function: an indexing of e is considered
// guarded when len(e) is consulted somewhere in the same function.
func lenGuards(body *ast.BlockStmt) map[string]bool {
	guards := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "len" {
			guards[types.ExprString(ast.Unparen(call.Args[0]))] = true
		}
		return true
	})
	return guards
}

// unguardedIndex reports whether indexing base with any of the given
// bound expressions is an unguarded computed access: the base is a
// slice/array/string, at least one bound is non-constant arithmetic, and
// no len(base) appears in the function.
func unguardedIndex(info *types.Info, guards map[string]bool, base ast.Expr, bounds ...ast.Expr) bool {
	tv, ok := info.Types[base]
	if !ok {
		return false
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice, *types.Array:
	case *types.Pointer:
		if _, isArr := t.Elem().Underlying().(*types.Array); !isArr {
			return false
		}
	case *types.Basic:
		if t.Info()&types.IsString == 0 {
			return false
		}
	default:
		return false // maps never panic on lookup; type params excluded
	}
	computed := false
	for _, b := range bounds {
		if b == nil {
			continue
		}
		if tv, ok := info.Types[b]; ok && tv.Value != nil {
			continue // constant-folded
		}
		if containsArithmetic(b) {
			computed = true
		}
	}
	if !computed {
		return false
	}
	return !guards[types.ExprString(ast.Unparen(base))]
}

// containsArithmetic reports whether the expression contains an arithmetic
// or shift operator — the signature of an offset computation that can
// overflow or run past a tampered length field.
func containsArithmetic(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if bin, ok := n.(*ast.BinaryExpr); ok {
			switch bin.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
				token.SHL, token.SHR, token.AND, token.OR, token.XOR, token.AND_NOT:
				found = true
				return false
			}
		}
		return true
	})
	return found
}
