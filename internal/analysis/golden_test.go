package analysis

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden corpus under testdata/src holds one miniature module per
// checker. Offending lines carry analysistest-style expectations:
//
//	badCode() // want `regex matching the finding message`
//
// Every finding must match exactly one expectation on its file:line, and
// every expectation must be hit — so the corpus documents both that each
// rule fires and that each escape hatch (//ss:seals, //ss:nopanic-ok,
// //ss:host, //ss:xpart, len() guards, comma-ok, sync.Pool) silences it.

var wantRE = regexp.MustCompile("// want `([^`]+)`")

type expectation struct {
	file    string // slash path relative to the corpus root
	line    int
	re      *regexp.Regexp
	matched bool
}

// collectWants scans every corpus source file for want expectations.
func collectWants(t *testing.T, root string) []*expectation {
	t.Helper()
	var wants []*expectation
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regex %q: %v", rel, line, m[1], err)
			}
			wants = append(wants, &expectation{file: filepath.ToSlash(rel), line: line, re: re})
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// runGolden loads one corpus, runs one checker, and diffs findings
// against the want expectations.
func runGolden(t *testing.T, checker string) {
	t.Helper()
	root := filepath.Join("testdata", "src", checker)
	prog, err := Load(LoadConfig{Dir: root, ModulePath: "corpus"})
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	findings, err := Run(prog, checker)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, root)
	if len(wants) == 0 {
		t.Fatalf("corpus %s has no want expectations", checker)
	}
	for _, f := range findings {
		hit := false
		for _, w := range wants {
			if w.file == f.File && w.line == f.Line && w.re.MatchString(f.Message) {
				w.matched = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestGoldenTrustedMem(t *testing.T)   { runGolden(t, "trustedmem") }
func TestGoldenNoPanic(t *testing.T)      { runGolden(t, "nopanic") }
func TestGoldenBoundaryCost(t *testing.T) { runGolden(t, "boundarycost") }
func TestGoldenPartition(t *testing.T)    { runGolden(t, "partition") }
func TestGoldenKeyflow(t *testing.T)      { runGolden(t, "keyflow") }
func TestGoldenKeylife(t *testing.T)      { runGolden(t, "keylife") }

// TestAnalyzeSelf is the invariant the CI job enforces: the real module
// carries a complete annotation audit and every checker is clean.
func TestAnalyzeSelf(t *testing.T) {
	prog, err := Load(LoadConfig{Dir: filepath.Join("..", "..")})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings, err := Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("module not clean: %s", f)
	}
}
