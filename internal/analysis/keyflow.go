package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// keyflowChecker enforces ShieldStore's secret-flow rules over the
// two-color taint engine (taint.go):
//
//  1. Secret-tainted bytes must not reach a //ss:sink call (a write into
//     simulated, host-visible memory) unless the caller is audited
//     //ss:seals or //ss:enclave-write.
//  2. Secret-tainted bytes must not reach host I/O (os file writes)
//     unless the caller is audited //ss:seals — and even then the audit
//     is for sealed bytes; direct key flows are flagged.
//  3. Secret-tainted bytes must never be formatted or logged (fmt/log):
//     a key in an error string or a debug line is a key in the host's
//     stdout buffer. No escape hatch — route the value through sealing
//     or log a length/fingerprint instead.
//  4. Secret- or authn-tainted material must not be compared with
//     variable-time equality (==, !=, bytes.Equal, bytes.Compare,
//     reflect.DeepEqual): use subtle.ConstantTimeCompare or hmac.Equal,
//     or annotate the function //ss:ct-ok(reason).
type keyflowChecker struct{}

func (keyflowChecker) Name() string { return "keyflow" }

func (keyflowChecker) Check(p *Program) []Finding {
	ti := computeTaint(p)
	var findings []Finding
	for _, fd := range sortedDecls(p) {
		findings = append(findings, checkKeyflow(ti, fd)...)
	}
	return findings
}

// hostIOFuncs are external writers whose arguments land on the host side
// of the boundary verbatim.
var hostIOFuncs = map[string]bool{
	"os.WriteFile":               true,
	"(*os.File).Write":           true,
	"(*os.File).WriteString":     true,
	"(*os.File).WriteAt":         true,
	"(io.Writer).Write":          true,
	"(*bufio.Writer).Write":      true,
	"(net.Conn).Write":           true,
	"(*net.TCPConn).Write":       true,
	"(*net.UnixConn).Write":      true,
	"(*bytes.Buffer).WriteTo":    true,
	"(*os.File).ReadFrom":        true,
	"(io.ReadWriter).Write":      true,
	"(io.WriteCloser).Write":     true,
	"(io.ReadWriteCloser).Write": true,
}

// variableTimeCompareFuncs compare their arguments byte by byte with an
// early exit — timing reveals the first differing position.
var variableTimeCompareFuncs = map[string]bool{
	"bytes.Equal":       true,
	"bytes.Compare":     true,
	"reflect.DeepEqual": true,
	"strings.Compare":   true,
	"strings.EqualFold": true,
}

// isLogPkg reports whether the callee formats values into host-visible
// text (fmt, log).
func isLogPkg(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == "fmt" || path == "log"
}

// comparableLeak reports whether a tainted operand's type makes a
// variable-time == meaningful to an attacker: byte arrays, strings and
// integers leak their content position by position. Pointer, interface,
// channel and bool comparisons (nil checks, identity checks) do not.
func comparableLeak(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Array:
		return true
	case *types.Basic:
		return u.Info()&(types.IsInteger|types.IsString) != 0
	}
	return false
}

func checkKeyflow(ti *taintInfo, fd *FuncDecl) []Finding {
	p := ti.p
	info := fd.Pkg.Info
	ft := ti.funcTaint(fd)
	ctOK := p.Annot.FuncOrPkgHas(fd.Fn, DirCTOK)
	sealed := p.Annot.FuncOrPkgHas(fd.Fn, DirSeals)
	enclaveWrite := p.Annot.FuncOrPkgHas(fd.Fn, DirEnclaveWrite)

	var findings []Finding
	ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := calleeOf(info, n)
			if callee == nil {
				return true
			}
			var argBits uint8
			for _, arg := range n.Args {
				argBits |= ft.exprTaint(arg)
			}
			name := callee.FullName()
			switch {
			case p.Annot.FuncHas(callee, DirSink):
				if argBits&taintSecret != 0 && !sealed && !enclaveWrite && callee.Pkg() != fd.Fn.Pkg() {
					findings = append(findings, p.newFinding("keyflow", n.Pos(),
						"%s passes secret-tainted bytes into sink %s without //ss:seals or //ss:enclave-write audit",
						fd.Fn.Name(), name))
				}
			case hostIOFuncs[name]:
				if argBits&taintSecret != 0 {
					findings = append(findings, p.newFinding("keyflow", n.Pos(),
						"%s writes secret-tainted bytes to host I/O via %s; seal the value first",
						fd.Fn.Name(), name))
				}
			case isLogPkg(callee):
				if argBits&taintSecret != 0 {
					findings = append(findings, p.newFinding("keyflow", n.Pos(),
						"%s formats secret-tainted bytes via %s; log a length or fingerprint instead",
						fd.Fn.Name(), name))
				}
			case variableTimeCompareFuncs[name]:
				if argBits != 0 && !ctOK {
					findings = append(findings, p.newFinding("keyflow", n.Pos(),
						"%s compares secret/authenticated material via %s; use subtle.ConstantTimeCompare or annotate //ss:ct-ok(reason)",
						fd.Fn.Name(), name))
				}
			}
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			if ctOK {
				return true
			}
			for _, side := range [2]ast.Expr{n.X, n.Y} {
				bits := ft.exprTaint(side)
				if bits == 0 {
					continue
				}
				tv, ok := info.Types[side]
				if !ok || !comparableLeak(tv.Type) {
					continue
				}
				findings = append(findings, p.newFinding("keyflow", n.Pos(),
					"%s compares secret/authenticated material with %s; use subtle.ConstantTimeCompare or annotate //ss:ct-ok(reason)",
					fd.Fn.Name(), n.Op))
				break
			}
		}
		return true
	})
	return findings
}
