package cmac

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// RFC 4493 §4 test vectors (AES-128 key 2b7e1516...).
func TestRFC4493Vectors(t *testing.T) {
	key := "2b7e151628aed2a6abf7158809cf4f3c"
	msg := "6bc1bee22e409f96e93d7e117393172a" +
		"ae2d8a571e03ac9c9eb76fac45af8e51" +
		"30c81c46a35ce411e5fbc1191a0a52ef" +
		"f69f2445df4f9b17ad2b417be66c3710"

	cases := []struct {
		name string
		n    int // message prefix length in bytes
		tag  string
	}{
		{"len0", 0, "bb1d6929e95937287fa37d129b756746"},
		{"len16", 16, "070a16b46b4d4144f79bdd9dd04a287c"},
		{"len40", 40, "dfa66747de9ae63030ca32611497c827"},
		{"len64", 64, "51f0bebf7e3b9d92fc49741779363cfe"},
	}

	c, err := New(unhex(t, key))
	if err != nil {
		t.Fatal(err)
	}
	full := unhex(t, msg)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := c.Tag(full[:tc.n])
			want := unhex(t, tc.tag)
			if !bytes.Equal(got[:], want) {
				t.Errorf("tag = %x, want %x", got, want)
			}
			if !c.Verify(full[:tc.n], want) {
				t.Error("Verify rejected the RFC tag")
			}
		})
	}
}

// RFC 4493 subkey generation intermediate values.
func TestSubkeyGeneration(t *testing.T) {
	c, err := New(unhex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	if err != nil {
		t.Fatal(err)
	}
	wantK1 := unhex(t, "fbeed618357133667c85e08f7236a8de")
	wantK2 := unhex(t, "f7ddac306ae266ccf90bc11ee46d513b")
	if !bytes.Equal(c.k1[:], wantK1) {
		t.Errorf("K1 = %x, want %x", c.k1, wantK1)
	}
	if !bytes.Equal(c.k2[:], wantK2) {
		t.Errorf("K2 = %x, want %x", c.k2, wantK2)
	}
}

func TestAES256Key(t *testing.T) {
	// NIST SP 800-38B example D.3 (AES-256, empty message).
	key := unhex(t, "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4")
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	want := unhex(t, "028962f61b7bf89efc6b551f4667d983")
	got := c.Tag(nil)
	if !bytes.Equal(got[:], want) {
		t.Errorf("AES-256 empty tag = %x, want %x", got, want)
	}
}

func TestBadKey(t *testing.T) {
	if _, err := New(make([]byte, 5)); err == nil {
		t.Fatal("5-byte key accepted")
	}
}

func TestVerifyRejectsTamperedTag(t *testing.T) {
	c, _ := New(make([]byte, 16))
	msg := []byte("shielded key-value storage")
	tag := c.Tag(msg)
	for i := range tag {
		bad := tag
		bad[i] ^= 1
		if c.Verify(msg, bad[:]) {
			t.Fatalf("accepted tag with bit flip at byte %d", i)
		}
	}
	if c.Verify(msg, tag[:8]) {
		t.Fatal("accepted short tag")
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	c, _ := New(make([]byte, 16))
	msg := []byte("0123456789abcdef0123456789abcdef") // two full blocks
	tag := c.Tag(msg)
	for i := range msg {
		bad := append([]byte(nil), msg...)
		bad[i] ^= 0x80
		if c.Verify(bad, tag[:]) {
			t.Fatalf("accepted message with bit flip at byte %d", i)
		}
	}
}

func TestSumPanicsOnShortBuffer(t *testing.T) {
	c, _ := New(make([]byte, 16))
	defer func() {
		if recover() == nil {
			t.Fatal("short output buffer must panic")
		}
	}()
	c.Sum(make([]byte, 8), []byte("x"))
}

// Property: distinct messages essentially never collide, and the tag is a
// pure function of the message.
func TestCMACProperties(t *testing.T) {
	c, _ := New([]byte("0123456789abcdef"))
	f := func(a, b []byte) bool {
		ta, tb := c.Tag(a), c.Tag(b)
		if bytes.Equal(a, b) {
			return ta == tb
		}
		return ta != tb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Sum into a caller buffer matches Tag.
func TestSumMatchesTag(t *testing.T) {
	c, _ := New([]byte("0123456789abcdef"))
	f := func(msg []byte) bool {
		out := make([]byte, Size)
		c.Sum(out, msg)
		tag := c.Tag(msg)
		return bytes.Equal(out, tag[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: message lengths straddling block boundaries are all handled.
func TestAllLengthsUpTo100(t *testing.T) {
	c, _ := New([]byte("0123456789abcdef"))
	msg := make([]byte, 100)
	for i := range msg {
		msg[i] = byte(i)
	}
	seen := map[[Size]byte]int{}
	for n := 0; n <= 100; n++ {
		tag := c.Tag(msg[:n])
		if prev, dup := seen[tag]; dup {
			t.Fatalf("lengths %d and %d collide", prev, n)
		}
		seen[tag] = n
		if !c.Verify(msg[:n], tag[:]) {
			t.Fatalf("round trip failed at length %d", n)
		}
	}
}

func BenchmarkCMAC16(b *testing.B)  { benchCMAC(b, 16) }
func BenchmarkCMAC512(b *testing.B) { benchCMAC(b, 512) }

func benchCMAC(b *testing.B, n int) {
	c, _ := New(make([]byte, 16))
	msg := make([]byte, n)
	out := make([]byte, Size)
	b.SetBytes(int64(n))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Sum(out, msg)
	}
}
