// Package cmac implements AES-CMAC (RFC 4493 / NIST SP 800-38B).
//
// ShieldStore uses sgx_rijndael128_cmac from the Intel SGX SDK for every
// per-entry MAC and for the in-enclave bucket-set MAC hashes; the Go
// standard library has no CMAC, so this package provides it on top of
// crypto/aes. The implementation follows RFC 4493 exactly and is validated
// against its published test vectors.
package cmac

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"fmt"
	"sync"
)

// Size is the MAC length in bytes (one AES block).
const Size = 16

// BlockSize is the underlying cipher block size.
const BlockSize = aes.BlockSize

// CMAC computes AES-CMAC tags under a fixed key. It precomputes the two
// RFC 4493 subkeys at construction; Sum is then allocation-free for inputs
// assembled by the caller.
type CMAC struct {
	block  cipher.Block
	k1, k2 [BlockSize]byte
}

// New creates a CMAC instance for a 16-, 24- or 32-byte AES key.
func New(key []byte) (*CMAC, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("cmac: %w", err)
	}
	c := &CMAC{block: block}
	// Generate_Subkey (RFC 4493 §2.3): L = AES-K(0^128); K1 = dbl(L);
	// K2 = dbl(K1).
	var l [BlockSize]byte
	block.Encrypt(l[:], l[:])
	dbl(&c.k1, &l)
	dbl(&c.k2, &c.k1)
	return c, nil
}

// dbl doubles an element of GF(2^128) as defined by RFC 4493: left shift by
// one, conditionally XORing the reduction constant 0x87 into the last byte.
func dbl(dst, src *[BlockSize]byte) {
	var carry byte
	for i := BlockSize - 1; i >= 0; i-- {
		b := src[i]
		dst[i] = b<<1 | carry
		carry = b >> 7
	}
	// Constant-time conditional XOR of the reduction polynomial.
	dst[BlockSize-1] ^= 0x87 & (0 - carry)
}

// sumState is the per-call working set of Sum. The blocks are pooled
// rather than stack-allocated: passing a local array's slice to the
// cipher.Block interface makes it escape, so a plain `var x [16]byte`
// costs one heap allocation per block — per MAC — on the hottest path in
// the store. The pool keeps Sum allocation-free at steady state.
type sumState struct {
	x, y, m, out [BlockSize]byte
}

var sumPool = sync.Pool{New: func() any { return new(sumState) }}

// Sum writes the 16-byte tag of msg into out (which must be at least Size
// bytes) and returns out[:Size].
//
//ss:nopanic-ok(caller contract: every in-module caller passes a 16-byte tag buffer)
func (c *CMAC) Sum(out []byte, msg []byte) []byte {
	if len(out) < Size {
		panic("cmac: output buffer too small")
	}
	st := sumPool.Get().(*sumState)
	st.x = [BlockSize]byte{}

	n := len(msg)
	full := n / BlockSize
	rem := n % BlockSize
	complete := rem == 0 && full > 0

	// Process all blocks except the last.
	last := full
	if complete {
		last = full - 1
	}
	for i := 0; i < last; i++ {
		xorBlock(&st.y, &st.x, msg[i*BlockSize:])
		c.block.Encrypt(st.x[:], st.y[:])
	}

	// Last block: XOR with K1 (complete) or pad and XOR with K2.
	st.m = [BlockSize]byte{}
	if complete {
		copy(st.m[:], msg[last*BlockSize:])
		for i := 0; i < BlockSize; i++ {
			st.m[i] ^= c.k1[i]
		}
	} else {
		copy(st.m[:], msg[last*BlockSize:])
		st.m[rem] = 0x80
		for i := 0; i < BlockSize; i++ {
			st.m[i] ^= c.k2[i]
		}
	}
	for i := 0; i < BlockSize; i++ {
		st.y[i] = st.x[i] ^ st.m[i]
	}
	// Encrypt into the pooled block and copy out, so `out` itself never
	// escapes through the Block interface (callers pass stack arrays).
	c.block.Encrypt(st.out[:], st.y[:])
	copy(out[:Size], st.out[:])
	sumPool.Put(st)
	return out[:Size]
}

// Tag returns the tag of msg as a fresh array.
//
//ss:authn — tags must be compared in constant time (Verify, subtle).
func (c *CMAC) Tag(msg []byte) [Size]byte {
	var t [Size]byte
	c.Sum(t[:], msg)
	return t
}

// Verify reports whether tag is the valid CMAC of msg, in constant time.
func (c *CMAC) Verify(msg, tag []byte) bool {
	if len(tag) != Size {
		return false
	}
	var want [Size]byte
	c.Sum(want[:], msg)
	return subtle.ConstantTimeCompare(want[:], tag) == 1
}

func xorBlock(dst *[BlockSize]byte, x *[BlockSize]byte, m []byte) {
	for i := 0; i < BlockSize; i++ {
		dst[i] = x[i] ^ m[i]
	}
}
