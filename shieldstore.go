// Package shieldstore is a Go reproduction of "ShieldStore: Shielded
// In-memory Key-value Storage with SGX" (Kim et al., EuroSys 2019): a
// key-value store whose main hash table lives in untrusted memory with
// every entry individually encrypted and integrity-protected by enclave
// code, sidestepping the SGX enclave page cache (EPC) limit.
//
// Because Go has no production enclave runtime, the store runs on a
// deterministic software SGX simulator (see DESIGN.md): all cryptography
// is real, memory is split into simulated enclave/untrusted regions, and
// every operation's cost is charged to a calibrated virtual-cycle model —
// which is also how the repository regenerates the paper's figures.
//
// Basic use:
//
//	db, err := shieldstore.Open(shieldstore.Config{})
//	if err != nil { ... }
//	defer db.Close()
//	db.Set([]byte("user42"), []byte("hello"))
//	v, err := db.Get([]byte("user42"))
//
// The store supports Get/Set/Delete plus the server-side computations the
// paper motivates (Append, Incr), snapshot persistence with rollback
// protection, and a remote-attested encrypted network front-end (Serve).
package shieldstore

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"shieldstore/internal/core"
	"shieldstore/internal/entry"
	"shieldstore/internal/histo"
	"shieldstore/internal/mem"
	"shieldstore/internal/persist"
	"shieldstore/internal/server"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
	"shieldstore/internal/vlog"
)

// Re-exported sentinel errors.
var (
	// ErrNotFound reports a missing key.
	ErrNotFound = core.ErrNotFound
	// ErrIntegrity reports tampered or replayed untrusted state.
	ErrIntegrity = core.ErrIntegrity
	// ErrNotNumeric reports Incr on a non-numeric value.
	ErrNotNumeric = core.ErrNotNumeric
	// ErrRollback reports restoring a stale snapshot.
	ErrRollback = persist.ErrRollback
)

// SnapshotMode selects the persistence flavor of §4.4.
type SnapshotMode int

// Snapshot modes.
const (
	// SnapshotOptimized is Algorithm 1: only metadata sealing blocks.
	SnapshotOptimized SnapshotMode = iota
	// SnapshotNaive blocks requests for the whole snapshot write.
	SnapshotNaive
)

// Config configures a DB. The zero value is a usable in-memory store with
// the paper's ShieldOpt defaults at laptop scale.
type Config struct {
	// Partitions is the number of hash-partitioned worker shards (§5.3).
	// Default 4, matching the paper's 4-core evaluation.
	Partitions int
	// Buckets is the total hash bucket count (default 1<<16).
	Buckets int
	// MACHashes is the number of in-enclave MAC hash slots (§4.3);
	// default = Buckets.
	MACHashes int
	// CacheBytes enables the in-enclave plaintext cache (§6.3).
	CacheBytes int64
	// EPCBytes overrides the simulated effective EPC (default ~90 MB).
	EPCBytes int64
	// Seed makes the enclave's key material and DRBG reproducible;
	// 0 uses a fixed default.
	Seed uint64
	// DisableKeyHint, DisableMACBucket and DisableExtraHeap turn off the
	// §5 optimizations (ShieldBase ablations).
	DisableKeyHint   bool
	DisableMACBucket bool
	DisableExtraHeap bool
	// SnapshotDir enables persistence: Snapshot() writes there, and Open
	// restores from it when snapshots are present.
	SnapshotDir string
	// SnapshotMode selects naive vs optimized snapshots.
	SnapshotMode SnapshotMode
	// RangeIndex enables ordered Range queries via an enclave-resident
	// skiplist over plaintext keys — the paper's §7 future-work
	// extension. Trade-off: EPC footprint proportional to the key set.
	RangeIndex bool
	// VLogDir enables tiered hybrid storage (DESIGN.md §14): values at or
	// above SpillThreshold spill to an encrypted append-only value log
	// under this directory once MemBudget is pressed, with the freshness
	// state (segment versions + extents) held in enclave memory.
	VLogDir string
	// SpillThreshold is the minimum value size eligible for spilling
	// (default core.DefaultSpillThreshold; only meaningful with VLogDir).
	SpillThreshold int
	// MemBudget caps the total in-memory value bytes before Sets start
	// spilling; 0 spills every threshold-sized value (with VLogDir set).
	MemBudget int64
}

// DB is a ShieldStore database handle. All methods are safe for
// concurrent use; internally each key-space partition is owned by exactly
// one logical thread, as in the paper.
type DB struct {
	cfg     Config
	enclave *sgx.Enclave
	cipher  *entry.Cipher

	parts  []*persist.Store // persistence wrappers (always present)
	meters []*sim.Meter
	lats   []*histo.Histogram // per-partition virtual latency (cycles)
	locks  []sync.Mutex

	closed bool
	mu     sync.Mutex
}

// Open creates (or restores) a database.
//
//ss:host(database bootstrap: directory setup happens before the measured window)
func Open(cfg Config) (*DB, error) {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 4
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 1 << 16
	}
	if cfg.MACHashes <= 0 || cfg.MACHashes > cfg.Buckets {
		cfg.MACHashes = cfg.Buckets
	}

	space := mem.NewSpace(mem.Config{EPCBytes: cfg.EPCBytes})
	scfg := sgx.Config{Space: space, Seed: cfg.Seed, Measurement: Measurement()}
	if cfg.SnapshotDir != "" {
		if err := os.MkdirAll(cfg.SnapshotDir, 0o700); err != nil {
			return nil, err
		}
		scfg.CounterPath = filepath.Join(cfg.SnapshotDir, "nvram.bin")
	}
	enclave := sgx.New(scfg)

	db := &DB{cfg: cfg, enclave: enclave}
	db.meters = make([]*sim.Meter, cfg.Partitions)
	db.lats = make([]*histo.Histogram, cfg.Partitions)
	db.locks = make([]sync.Mutex, cfg.Partitions)
	for i := range db.meters {
		db.meters[i] = sim.NewMeter(enclave.Model())
		db.lats[i] = &histo.Histogram{}
	}

	// Restore or create.
	if cfg.SnapshotDir != "" && hasSnapshot(partDir(cfg.SnapshotDir, 0)) {
		return db, db.restore()
	}

	setup := sim.NewMeter(enclave.Model())
	db.cipher = entry.NewCipher(enclave, setup)
	opts := db.storeOptions()
	for i := 0; i < cfg.Partitions; i++ {
		s := core.New(enclave, db.cipher, opts)
		if cfg.VLogDir != "" {
			l, err := vlog.New(enclave, partDir(cfg.VLogDir, i), vlog.Options{})
			if err != nil {
				return nil, fmt.Errorf("shieldstore: open value log partition %d: %w", i, err)
			}
			s.AttachVLog(l)
		}
		db.parts = append(db.parts, db.wrap(s, i))
	}
	return db, nil
}

// storeOptions converts Config into per-partition core options.
func (db *DB) storeOptions() core.Options {
	cfg := db.cfg
	opts := core.Defaults(max(1, cfg.Buckets/cfg.Partitions))
	opts.MACHashes = max(1, cfg.MACHashes/cfg.Partitions)
	opts.KeyHint = !cfg.DisableKeyHint
	opts.MACBucket = !cfg.DisableMACBucket
	opts.ExtraHeap = !cfg.DisableExtraHeap
	opts.CacheBytes = cfg.CacheBytes / int64(cfg.Partitions)
	opts.RangeIndex = cfg.RangeIndex
	if cfg.SpillThreshold > 0 {
		opts.SpillThreshold = cfg.SpillThreshold
	}
	opts.MemBudget = cfg.MemBudget / int64(cfg.Partitions)
	return opts
}

// wrap attaches the persistence layer to one partition.
//
//ss:host(directory setup at open time, outside the measured window)
func (db *DB) wrap(s *core.Store, part int) *persist.Store {
	dir := ""
	mode := persist.Optimized
	if db.cfg.SnapshotMode == SnapshotNaive {
		mode = persist.Naive
	}
	if db.cfg.SnapshotDir != "" {
		dir = partDir(db.cfg.SnapshotDir, part)
		_ = os.MkdirAll(dir, 0o700)
	}
	return persist.New(s, dir, mode)
}

func partDir(base string, part int) string {
	return filepath.Join(base, fmt.Sprintf("part-%03d", part))
}

//ss:host(existence probe at open time, outside the measured window)
func hasSnapshot(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, "snapshot.meta"))
	return err == nil
}

// restore loads every partition from its snapshot.
func (db *DB) restore() error {
	m := sim.NewMeter(db.enclave.Model())
	for i := 0; i < db.cfg.Partitions; i++ {
		dir := partDir(db.cfg.SnapshotDir, i)
		ro := persist.RestoreOpts{CacheBytes: db.cfg.CacheBytes / int64(db.cfg.Partitions)}
		if db.cfg.VLogDir != "" {
			ro.VLogDir = partDir(db.cfg.VLogDir, i)
		}
		s, err := persist.RestoreWith(db.enclave, dir, persist.CounterIDFor(dir), m, ro)
		if err != nil {
			return fmt.Errorf("shieldstore: restore partition %d: %w", i, err)
		}
		if db.cipher == nil {
			db.cipher = s.Cipher()
		}
		db.parts = append(db.parts, db.wrap(s, i))
	}
	return nil
}

// Measurement returns the enclave code identity this build reports in
// attestation quotes.
func Measurement() [32]byte {
	var m [32]byte
	copy(m[:], "shieldstore-go-enclave-v1")
	return m
}

// AttestationService returns a quote verifier for servers created with
// the given seed. It plays the role of Intel's attestation service, which
// holds the platform keys: in the simulation those keys derive from the
// deployment seed, so a client process can verify quotes of a server it
// shares the seed with without sharing the enclave itself.
func AttestationService(seed uint64) *sgx.Enclave {
	space := mem.NewSpace(mem.Config{EPCBytes: 64 << 10})
	return sgx.New(sgx.Config{Space: space, Seed: seed, Measurement: Measurement()})
}

// route picks the partition for a key and returns it locked.
func (db *DB) route(key []byte) (int, *persist.Store, *sim.Meter) {
	h := db.cipher.BucketHash(nil, key)
	i := int(h % uint64(len(db.parts)))
	return i, db.parts[i], db.meters[i]
}

// Get returns the value stored under key (a copy).
func (db *DB) Get(key []byte) ([]byte, error) {
	i, p, m := db.route(key)
	db.locks[i].Lock()
	defer db.locks[i].Unlock()
	before := m.Cycles()
	v, err := p.Get(m, key)
	db.lats[i].Record(m.Cycles() - before)
	return v, err
}

// Set stores value under key.
func (db *DB) Set(key, value []byte) error {
	i, p, m := db.route(key)
	db.locks[i].Lock()
	defer db.locks[i].Unlock()
	before := m.Cycles()
	err := p.Set(m, key, value)
	db.lats[i].Record(m.Cycles() - before)
	return err
}

// Delete removes key.
func (db *DB) Delete(key []byte) error {
	i, p, m := db.route(key)
	db.locks[i].Lock()
	defer db.locks[i].Unlock()
	return p.Delete(m, key)
}

// Append appends suffix to key's value inside the enclave — the
// server-side computation that client-side encryption cannot offer (§3.2).
func (db *DB) Append(key, suffix []byte) error {
	i, p, m := db.route(key)
	db.locks[i].Lock()
	defer db.locks[i].Unlock()
	return p.Append(m, key, suffix)
}

// Incr atomically adds delta to a decimal-encoded value and returns the
// new number (created at delta when missing).
func (db *DB) Incr(key []byte, delta int64) (int64, error) {
	i, p, m := db.route(key)
	db.locks[i].Lock()
	defer db.locks[i].Unlock()
	return db.incrLocked(p, m, key, delta)
}

// incrLocked runs Incr with the partition lock held. persist.Store does
// not wrap Incr directly; route through the main store when no snapshot is
// draining, else emulate via Get+Set.
func (db *DB) incrLocked(p *persist.Store, m *sim.Meter, key []byte, delta int64) (int64, error) {
	if !p.InSnapshot() {
		return p.Main().Incr(m, key, delta)
	}
	old, err := p.Get(m, key)
	if err != nil && !errors.Is(err, core.ErrNotFound) {
		return 0, err
	}
	cur := int64(0)
	if err == nil {
		n, perr := parseInt(old)
		if perr != nil {
			return 0, core.ErrNotNumeric
		}
		cur = n
	}
	cur += delta
	return cur, p.Set(m, key, []byte(fmt.Sprintf("%d", cur)))
}

// BatchOp is one operation of a DB.Batch call; BatchResult its per-op
// outcome. Both are re-exported from the core engine.
type (
	BatchOp     = core.BatchOp
	BatchResult = core.BatchResult
)

// Batch operation kinds, re-exported for BatchOp construction.
const (
	BatchGet    = core.BatchGet
	BatchSet    = core.BatchSet
	BatchDelete = core.BatchDelete
	BatchAppend = core.BatchAppend
	BatchIncr   = core.BatchIncr
)

// Batch executes a heterogeneous batch of operations, grouped by
// partition: each involved partition is locked once and applies its
// sub-batch with one bucket-set verification and one MAC-hash recompute
// per touched set (see DESIGN.md, "Batch amortization"). Results follow
// submission order; errors are isolated per op — a missing key taints only
// its own result, never the rest of the batch.
func (db *DB) Batch(ops []BatchOp) []BatchResult {
	results := make([]BatchResult, len(ops))
	if len(ops) == 0 {
		return results
	}
	idxs := make([][]int, len(db.parts))
	for i := range ops {
		h := db.cipher.BucketHash(nil, ops[i].Key)
		part := int(h % uint64(len(db.parts)))
		idxs[part] = append(idxs[part], i)
	}
	for part, list := range idxs {
		if len(list) == 0 {
			continue
		}
		sub := make([]BatchOp, len(list))
		for j, i := range list {
			sub[j] = ops[i]
		}
		db.locks[part].Lock()
		p, m := db.parts[part], db.meters[part]
		before := m.Cycles()
		var rs []BatchResult
		if !p.InSnapshot() {
			rs = p.Main().ApplyBatch(m, sub)
		} else {
			// A snapshot is draining: the persist wrapper must see every
			// mutation, so fall back to per-op application.
			rs = db.snapshotBatch(p, m, sub)
		}
		db.lats[part].Record(m.Cycles() - before)
		db.locks[part].Unlock()
		for j, i := range list {
			results[i] = rs[j]
		}
	}
	return results
}

// snapshotBatch applies a partition's sub-batch op-by-op through the
// persistence wrapper (correct during snapshot drain, none of the
// amortization). The partition lock is held.
func (db *DB) snapshotBatch(p *persist.Store, m *sim.Meter, ops []BatchOp) []BatchResult {
	rs := make([]BatchResult, len(ops))
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case core.BatchGet:
			rs[i].Val, rs[i].Err = p.Get(m, op.Key)
		case core.BatchSet:
			rs[i].Err = p.Set(m, op.Key, op.Value)
		case core.BatchDelete:
			rs[i].Err = p.Delete(m, op.Key)
		case core.BatchAppend:
			rs[i].Err = p.Append(m, op.Key, op.Value)
		case core.BatchIncr:
			rs[i].Num, rs[i].Err = db.incrLocked(p, m, op.Key, op.Delta)
		default:
			rs[i].Err = core.ErrBadBatchOp
		}
	}
	return rs
}

// MSet stores keys[i] = values[i] for all i in one batched call and
// returns the first per-op failure, if any.
func (db *DB) MSet(keys, values [][]byte) error {
	if len(keys) != len(values) {
		return errors.New("shieldstore: MSet keys/values length mismatch")
	}
	ops := make([]BatchOp, len(keys))
	for i := range keys {
		ops[i] = BatchOp{Kind: BatchSet, Key: keys[i], Value: values[i]}
	}
	for _, r := range db.Batch(ops) {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// KV is one key-value pair returned by Range.
type KV = core.KV

// Range returns up to limit pairs with start <= key < end in key order
// (limit <= 0 means unlimited), merged across partitions. Requires
// Config.RangeIndex. Results reflect fully merged state: snapshots in
// flight are drained first.
func (db *DB) Range(start, end []byte, limit int) ([]KV, error) {
	var all []KV
	for i := range db.parts {
		db.locks[i].Lock()
		db.parts[i].Drain(db.meters[i])
		kvs, err := db.parts[i].Main().Range(db.meters[i], start, end, limit)
		db.locks[i].Unlock()
		if err != nil {
			return nil, err
		}
		all = append(all, kvs...)
	}
	sort.Slice(all, func(i, j int) bool { return bytes.Compare(all[i].Key, all[j].Key) < 0 })
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	return all, nil
}

// Keys returns the number of live keys.
func (db *DB) Keys() int {
	total := 0
	for i := range db.parts {
		db.locks[i].Lock()
		total += db.parts[i].Main().Keys()
		db.locks[i].Unlock()
	}
	return total
}

// Snapshot persists the current state to SnapshotDir (§4.4). With
// SnapshotOptimized, request processing resumes almost immediately while
// the entry stream drains in background virtual time.
func (db *DB) Snapshot() error {
	if db.cfg.SnapshotDir == "" {
		return errors.New("shieldstore: no SnapshotDir configured")
	}
	for i := range db.parts {
		db.locks[i].Lock()
		err := db.parts[i].Snapshot(db.meters[i])
		db.locks[i].Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// VerifyIntegrity audits every bucket set and entry (defense-in-depth
// scrub; also run automatically after restore).
func (db *DB) VerifyIntegrity() error {
	for i := range db.parts {
		db.locks[i].Lock()
		err := db.parts[i].Main().VerifyAll(db.meters[i])
		db.locks[i].Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats reports aggregate simulator statistics for this DB.
type Stats struct {
	// Keys is the live key count.
	Keys int
	// VirtualSeconds is the busiest partition's virtual time.
	VirtualSeconds float64
	// Decryptions, EPCFaults, OCalls are headline simulator counters.
	Decryptions uint64
	EPCFaults   uint64
	OCalls      uint64
	// VLogSpills, VLogFaults, VLogGCCopies and VLogSegments summarize the
	// tiered value log: values written to disk, values faulted back on
	// read, GC relocations, and live segments across partitions.
	VLogSpills   uint64
	VLogFaults   uint64
	VLogGCCopies uint64
	VLogSegments uint64
	// UntrustedBytes and EnclaveBytes are the simulated region footprints.
	UntrustedBytes int64
	EnclaveBytes   int64
	// LatencyMeanUs, LatencyP50Us and LatencyP99Us summarize per-op
	// virtual latency (microseconds) of Get/Set operations.
	LatencyMeanUs float64
	LatencyP50Us  float64
	LatencyP99Us  float64
}

// Stats returns aggregate counters.
func (db *DB) Stats() Stats {
	agg := sim.NewMeter(db.enclave.Model())
	var maxC uint64
	for i := range db.parts {
		db.locks[i].Lock()
		agg.Add(db.meters[i])
		if c := db.meters[i].Cycles(); c > maxC {
			maxC = c
		}
		db.locks[i].Unlock()
	}
	lat := &histo.Histogram{}
	for i := range db.parts {
		db.locks[i].Lock()
		lat.Merge(db.lats[i])
		db.locks[i].Unlock()
	}
	toUs := func(cycles uint64) float64 {
		return db.enclave.Model().Seconds(cycles) * 1e6
	}
	space := db.enclave.Space()
	return Stats{
		Keys:           db.Keys(),
		VirtualSeconds: db.enclave.Model().Seconds(maxC),
		Decryptions:    agg.Events(sim.CtrDecrypt),
		EPCFaults:      agg.Events(sim.CtrEPCFaultRead) + agg.Events(sim.CtrEPCFaultWrite),
		OCalls:         agg.Events(sim.CtrOCall),
		VLogSpills:     agg.Events(sim.CtrVLogSpill),
		VLogFaults:     agg.Events(sim.CtrVLogFault),
		VLogGCCopies:   agg.Events(sim.CtrVLogGCCopy),
		VLogSegments:   agg.Events(sim.CtrVLogSegmentsLive),
		UntrustedBytes: space.UsedBytes(mem.Untrusted),
		EnclaveBytes:   space.UsedBytes(mem.Enclave),
		LatencyMeanUs:  db.enclave.Model().Seconds(uint64(lat.Mean())) * 1e6,
		LatencyP50Us:   toUs(lat.Quantile(0.5)),
		LatencyP99Us:   toUs(lat.Quantile(0.99)),
	}
}

// ServeOptions configures the network front-end.
type ServeOptions struct {
	// HotCalls uses exitless calls for socket syscalls (§6.4).
	HotCalls bool
	// Insecure disables session encryption (ablation only).
	Insecure bool
	// PipelineDepth bounds per-connection in-flight requests between the
	// reader and writer goroutines (0 = server default).
	PipelineDepth int
	// WriteBuffer sizes the per-connection coalescing write buffer in
	// bytes (0 = server default).
	WriteBuffer int
}

// Serve starts the remote-attested TCP front-end on ln. Close the
// returned server to stop. The DB remains usable locally.
func (db *DB) Serve(ln net.Listener, opts ServeOptions) *Server {
	s := server.Serve(ln, server.Config{
		Engine:        dbEngine{db},
		Enclave:       db.enclave,
		HotCalls:      opts.HotCalls,
		Secure:        !opts.Insecure,
		PipelineDepth: opts.PipelineDepth,
		WriteBuffer:   opts.WriteBuffer,
		Stats: func() []string {
			st := db.Stats()
			return []string{
				fmt.Sprintf("keys=%d", st.Keys),
				fmt.Sprintf("virtual_seconds=%.6f", st.VirtualSeconds),
				fmt.Sprintf("decryptions=%d", st.Decryptions),
				fmt.Sprintf("epc_faults=%d", st.EPCFaults),
				fmt.Sprintf("ocalls=%d", st.OCalls),
				fmt.Sprintf("untrusted_bytes=%d", st.UntrustedBytes),
				fmt.Sprintf("enclave_bytes=%d", st.EnclaveBytes),
				fmt.Sprintf("vlog_spill=%d", st.VLogSpills),
				fmt.Sprintf("vlog_fault=%d", st.VLogFaults),
				fmt.Sprintf("vlog_gc_copy=%d", st.VLogGCCopies),
				fmt.Sprintf("vlog_segments_live=%d", st.VLogSegments),
			}
		},
		Health: func() []string {
			// Store.Health reads only atomics, so no partition locks are
			// needed — a health probe never queues behind a slow op.
			hs := make([]core.PartHealth, len(db.parts))
			for i := range db.parts {
				hs[i] = db.parts[i].Main().Health()
			}
			return core.FormatHealth(hs)
		},
	})
	return &Server{s: s}
}

// Server is a running network front-end.
type Server struct{ s *server.Server }

// Addr returns the listen address.
func (s *Server) Addr() net.Addr { return s.s.Addr() }

// Close stops the front-end.
func (s *Server) Close() { s.s.Close() }

// dbEngine adapts DB to the server engine interface (meters are managed
// by the DB's partitions, so the front-end meter argument is unused for
// engine work).
type dbEngine struct{ db *DB }

func (e dbEngine) Get(_ *sim.Meter, key []byte) ([]byte, error) { return e.db.Get(key) }
func (e dbEngine) Set(_ *sim.Meter, key, value []byte) error    { return e.db.Set(key, value) }
func (e dbEngine) Delete(_ *sim.Meter, key []byte) error        { return e.db.Delete(key) }
func (e dbEngine) Append(_ *sim.Meter, key, suffix []byte) error {
	return e.db.Append(key, suffix)
}
func (e dbEngine) Incr(_ *sim.Meter, key []byte, delta int64) (int64, error) {
	return e.db.Incr(key, delta)
}
func (e dbEngine) ExecBatch(_ *sim.Meter, ops []core.BatchOp) []core.BatchResult {
	return e.db.Batch(ops)
}

// Enclave exposes the simulated enclave (attestation verification in
// examples and tests plays the role of the attestation service).
func (db *DB) Enclave() *sgx.Enclave { return db.enclave }

// Close drains in-flight snapshots, destroys the key material (cipher
// keys, value-log keys, enclave key seed) and marks the DB closed. Close
// is the key-hygiene boundary: after it returns, no copy of the store's
// secrets survives in this process.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	for i := range db.parts {
		db.locks[i].Lock()
		db.parts[i].Drain(db.meters[i])
		if l := db.parts[i].Main().VLog(); l != nil {
			_ = l.Close()
		}
		db.locks[i].Unlock()
	}
	if db.cipher != nil {
		db.cipher.Wipe()
	}
	return db.enclave.Teardown()
}

func parseInt(b []byte) (int64, error) {
	var n int64
	neg := false
	i := 0
	if len(b) > 0 && (b[0] == '-' || b[0] == '+') {
		neg = b[0] == '-'
		i = 1
	}
	if i == len(b) {
		return 0, errors.New("empty")
	}
	for ; i < len(b); i++ {
		if b[i] < '0' || b[i] > '9' {
			return 0, errors.New("not a digit")
		}
		n = n*10 + int64(b[i]-'0')
	}
	if neg {
		n = -n
	}
	return n, nil
}
