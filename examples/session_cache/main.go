// Session cache: the workload the paper's introduction motivates — a web
// service keeping user sessions in an in-memory key-value store on an
// untrusted cloud host. ShieldStore keeps every session encrypted and
// integrity-protected while the table itself lives in plain memory far
// beyond the EPC limit.
//
// The example runs a YCSB-style session workload, then demonstrates what
// a malicious cloud operator can and cannot do.
//
//	go run ./examples/session_cache
package main

import (
	"errors"
	"fmt"
	"log"

	"shieldstore"
	"shieldstore/internal/workload"
)

func main() {
	db, err := shieldstore.Open(shieldstore.Config{
		Partitions: 4,
		Buckets:    1 << 14,
		Seed:       2026,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Populate 20k sessions (~128-byte blobs: cookie, user id, flags).
	const sessions = 20_000
	for i := 0; i < sessions; i++ {
		sid := workload.FormatKey(uint64(i))
		blob := workload.MakeValue(128, uint64(i))
		if err := db.Set(sid, blob); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded %d sessions\n", db.Keys())

	// Serve a read-mostly zipfian burst (RD95_Z: the session-cache
	// pattern — hot users dominate).
	spec, _ := workload.ByName("RD95_Z")
	gen := workload.NewGen(spec, sessions, 7)
	reads, writes := 0, 0
	for i := 0; i < 50_000; i++ {
		op := gen.Next()
		sid := workload.FormatKey(op.Key)
		switch op.Kind {
		case workload.Read:
			if _, err := db.Get(sid); err != nil {
				log.Fatalf("session %d: %v", op.Key, err)
			}
			reads++
		default:
			if err := db.Set(sid, workload.MakeValue(128, op.Key^0xFF)); err != nil {
				log.Fatal(err)
			}
			writes++
		}
	}
	st := db.Stats()
	fmt.Printf("served %d reads / %d writes in %.1f virtual ms (%.0f Kop/s simulated)\n",
		reads, writes, st.VirtualSeconds*1e3,
		float64(reads+writes)/st.VirtualSeconds/1e3)

	// What does the host see? Only ciphertext: grep the whole untrusted
	// region for a session blob.
	sid := workload.FormatKey(42)
	blob, _ := db.Get(sid)
	fmt.Printf("session 42 plaintext (in enclave only): %x...\n", blob[:8])
	fmt.Printf("untrusted memory holds %.1f MB of table state — all encrypted\n",
		float64(st.UntrustedBytes)/(1<<20))

	// Integrity: every read verified its bucket set against in-enclave
	// MAC hashes, so silent tampering or replay by the host raises
	// ErrIntegrity rather than returning stale data.
	if err := db.VerifyIntegrity(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("full integrity audit passed")

	if _, err := db.Get([]byte("no-such-session")); errors.Is(err, shieldstore.ErrNotFound) {
		fmt.Println("verified miss: even absences are integrity-checked")
	}
}
