// Leaderboard: exercises the two extensions this reproduction adds on
// top of the paper — ordered range queries (§7 future work) and
// write-ahead-log persistence with batched monotonic-counter pinning
// (§7's "log entry per operation" alternative).
//
// A game backend tracks player scores with server-side Incr, lists score
// buckets with Range, and survives a crash via WAL replay.
//
//	go run ./examples/leaderboard
//
//ss:host(example program; plays the remote client)
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"shieldstore"
	"shieldstore/internal/core"
	"shieldstore/internal/mem"
	"shieldstore/internal/persist"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

func main() {
	// Part 1: ordered queries through the public API.
	db, err := shieldstore.Open(shieldstore.Config{
		Partitions: 2,
		Buckets:    4096,
		Seed:       77,
		RangeIndex: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		player := fmt.Sprintf("player:%04d", i)
		score := rng.Intn(10000)
		// Key scheme: tier prefix + player id; value = score.
		tier := score / 2500 // 0..3
		key := fmt.Sprintf("board:t%d:%s", tier, player)
		if err := db.Set([]byte(key), []byte(fmt.Sprintf("%d", score))); err != nil {
			log.Fatal(err)
		}
	}
	// Range over the top tier, in key order.
	top, err := db.Range([]byte("board:t3:"), []byte("board:t4:"), 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top tier sample (%d of tier-3 players):\n", len(top))
	for _, kv := range top {
		fmt.Printf("  %s = %s points\n", kv.Key, kv.Value)
	}

	// Part 2: per-operation durability with the WAL (internal API; the
	// paper's §7 fine-grained persistence alternative).
	dir, err := os.MkdirTemp("", "leaderboard-wal")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	space := mem.NewSpace(mem.Config{})
	encl := sgx.New(sgx.Config{Space: space, Seed: 77})
	store := core.New(encl, nil, core.Defaults(1024))
	wal, err := persist.NewWAL(store, dir, 16)
	if err != nil {
		log.Fatal(err)
	}
	meter := sim.NewMeter(encl.Model())
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("match:%03d", i))
		if err := wal.Set(meter, k, []byte("result")); err != nil {
			log.Fatal(err)
		}
	}
	wal.Close() // simulate a crash: no snapshot, no clean shutdown
	fmt.Printf("\nWAL: logged 100 mutations (%d monotonic-counter pins at batch 16)\n",
		meter.Events(sim.CtrMonotonicInc))

	// Recover by replay.
	encl2 := sgx.New(sgx.Config{Space: mem.NewSpace(mem.Config{}), Seed: 77})
	store2 := core.New(encl2, nil, core.Defaults(1024))
	meter2 := sim.NewMeter(encl2.Model())
	wal2, err := persist.ReplayWAL(store2, dir, 16, meter2)
	if err != nil {
		log.Fatal(err)
	}
	defer wal2.Close()
	fmt.Printf("recovered %d matches from the log; integrity verified\n", store2.Keys())
	if err := store2.VerifyAll(meter2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("full audit of recovered state passed ✔")
}
