// Quickstart: open a ShieldStore database, store and read some data, and
// inspect what the untrusted memory actually holds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"shieldstore"
)

func main() {
	// The zero config is a 4-partition in-memory store with all of the
	// paper's optimizations (key hints, MAC bucketing, extra heap
	// allocator) enabled.
	db, err := shieldstore.Open(shieldstore.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Basic operations.
	if err := db.Set([]byte("user:1001:name"), []byte("Ada Lovelace")); err != nil {
		log.Fatal(err)
	}
	if err := db.Set([]byte("user:1001:email"), []byte("ada@example.com")); err != nil {
		log.Fatal(err)
	}

	name, err := db.Get([]byte("user:1001:name"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("name  = %s\n", name)

	// Server-side computation (§3.2): the enclave decrypts, modifies and
	// re-encrypts without the value ever leaving protected execution.
	if err := db.Append([]byte("user:1001:name"), []byte(" (1815-1852)")); err != nil {
		log.Fatal(err)
	}
	visits, err := db.Incr([]byte("user:1001:visits"), 1)
	if err != nil {
		log.Fatal(err)
	}
	name, _ = db.Get([]byte("user:1001:name"))
	fmt.Printf("name  = %s\nvisits = %d\n", name, visits)

	// Missing keys are a typed error.
	if _, err := db.Get([]byte("nope")); err == shieldstore.ErrNotFound {
		fmt.Println("missing key -> ErrNotFound")
	}

	// A full integrity audit walks every bucket set and entry, verifying
	// the untrusted memory against the in-enclave MAC hashes.
	if err := db.VerifyIntegrity(); err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("audit OK: %d keys, %.0f KB in untrusted memory (all ciphertext), %.0f KB enclave\n",
		st.Keys, float64(st.UntrustedBytes)/1024, float64(st.EnclaveBytes)/1024)
	fmt.Printf("simulator: %d decryptions, %d EPC faults, %.2f ms virtual time\n",
		st.Decryptions, st.EPCFaults, st.VirtualSeconds*1e3)
}
