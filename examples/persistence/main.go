// Persistence and rollback protection (§4.4): periodic snapshots write
// the already-encrypted table straight to disk, metadata is sealed to the
// enclave, and a platform monotonic counter pins the snapshot version so
// a malicious host cannot roll the store back to an older state.
//
//	go run ./examples/persistence
//
//ss:host(example program driving the embedded store from the host side)
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"shieldstore"
)

func main() {
	dir, err := os.MkdirTemp("", "shieldstore-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := shieldstore.Config{
		Partitions:  2,
		Buckets:     4096,
		Seed:        7,
		SnapshotDir: dir,
		// Optimized mode (Algorithm 1): only metadata sealing blocks;
		// the entry stream is written by a background child while new
		// writes go to a temporary table.
		SnapshotMode: shieldstore.SnapshotOptimized,
	}

	// Phase 1: populate and snapshot.
	db, err := shieldstore.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if err := db.Set([]byte(fmt.Sprintf("doc:%04d", i)), []byte(fmt.Sprintf("content-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Snapshot(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot written: %d keys -> %s\n", db.Keys(), dir)

	// Writes after the snapshot continue immediately (the optimized mode
	// serves them from a temporary table while the child drains).
	if err := db.Set([]byte("doc:0000"), []byte("post-snapshot-update")); err != nil {
		log.Fatal(err)
	}
	if err := db.Close(); err != nil { // drains the snapshot child
		log.Fatal(err)
	}

	// Phase 2: "restart the machine" — reopen from disk. The sealed
	// metadata is unsealed inside the enclave, the encrypted entries are
	// reloaded, and the whole store is re-verified against the sealed
	// MAC hashes before serving.
	db2, err := shieldstore.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored %d keys; integrity verified during restore\n", db2.Keys())
	v, err := db2.Get([]byte("doc:4999"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("doc:4999 = %s\n", v)
	db2.Close()

	// Phase 3: rollback attack. Keep a copy of the CURRENT snapshot,
	// take a newer one, then restore the old files. The sealed version
	// no longer matches the platform monotonic counter.
	keep := map[string][]byte{}
	for _, pat := range []string{"part-*/snapshot.meta", "part-*/snapshot.data"} {
		files, _ := filepath.Glob(filepath.Join(dir, pat))
		for _, f := range files {
			b, _ := os.ReadFile(f)
			keep[f] = b
		}
	}
	db3, err := shieldstore.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	_ = db3.Set([]byte("doc:0000"), []byte("newer state"))
	if err := db3.Snapshot(); err != nil {
		log.Fatal(err)
	}
	db3.Close()

	for f, b := range keep { // the host rolls the files back
		if err := os.WriteFile(f, b, 0o600); err != nil {
			log.Fatal(err)
		}
	}
	_, err = shieldstore.Open(cfg)
	if errors.Is(err, shieldstore.ErrRollback) {
		fmt.Println("rollback attack detected: stale snapshot refused ✔")
	} else {
		log.Fatalf("rollback NOT detected: %v", err)
	}
}
