// Secure counters: the server-side computation story of §3.2. With
// client-side encryption a remote store can only ferry opaque blobs; the
// server-side model lets the enclave run increments and appends on the
// decrypted value without the client round-tripping it — and without the
// host ever seeing plaintext.
//
// This example runs a networked rate-limiter: many clients increment
// per-user counters on a ShieldStore server over the attested channel.
//
//	go run ./examples/counter
//
//ss:host(example program; plays the remote client)
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"shieldstore"
	"shieldstore/internal/client"
)

func main() {
	db, err := shieldstore.Open(shieldstore.Config{Partitions: 2, Buckets: 4096, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := db.Serve(ln, shieldstore.ServeOptions{HotCalls: true})
	defer srv.Close()
	fmt.Printf("server on %s (remote-attested, encrypted sessions)\n", srv.Addr())

	// 8 concurrent clients, each performing 250 increments across 10
	// user counters. Each client attests the enclave before trusting it.
	const clients = 8
	const incrsPer = 250
	var wg sync.WaitGroup
	for cid := 0; cid < clients; cid++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			c, err := client.Dial(srv.Addr().String(), client.Options{
				Verifier:    db.Enclave(), // the attestation service
				Measurement: shieldstore.Measurement(),
				Secure:      true,
			})
			if err != nil {
				log.Printf("client %d: %v", cid, err)
				return
			}
			defer c.Close()
			for i := 0; i < incrsPer; i++ {
				user := fmt.Sprintf("ratelimit:user%02d", i%10)
				if _, err := c.Incr([]byte(user), 1); err != nil {
					log.Printf("client %d: incr: %v", cid, err)
					return
				}
			}
		}(cid)
	}
	wg.Wait()

	// Every increment landed exactly once: totals must sum to 8*250.
	total := int64(0)
	for u := 0; u < 10; u++ {
		key := []byte(fmt.Sprintf("ratelimit:user%02d", u))
		n, err := db.Incr(key, 0) // read-modify-write of +0 = atomic read
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s = %d\n", key, n)
		total += n
	}
	fmt.Printf("total = %d (want %d)\n", total, clients*incrsPer)
	if total != clients*incrsPer {
		log.Fatal("lost updates!")
	}

	// Appends work the same way: an audit log the host cannot read.
	for _, event := range []string{"login;", "purchase;", "logout;"} {
		if err := db.Append([]byte("audit:user03"), []byte(event)); err != nil {
			log.Fatal(err)
		}
	}
	trail, _ := db.Get([]byte("audit:user03"))
	fmt.Printf("audit trail (decrypted in enclave): %s\n", trail)
}
