package shieldstore

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"

	"shieldstore/internal/client"
)

func testConfig(dir string) Config {
	return Config{
		Partitions:  2,
		Buckets:     256,
		EPCBytes:    16 << 20,
		Seed:        7,
		SnapshotDir: dir,
	}
}

func TestOpenDefaults(t *testing.T) {
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get([]byte("k"))
	if err != nil || string(got) != "v" {
		t.Fatalf("%q %v", got, err)
	}
}

func TestBasicOps(t *testing.T) {
	db, err := Open(testConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 300; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		if err := db.Set(k, []byte(fmt.Sprintf("val-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if db.Keys() != 300 {
		t.Fatalf("Keys = %d", db.Keys())
	}
	for i := 0; i < 300; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		got, err := db.Get(k)
		if err != nil || string(got) != fmt.Sprintf("val-%04d", i) {
			t.Fatalf("key %d: %q %v", i, got, err)
		}
	}
	if err := db.Append([]byte("key-0000"), []byte("+")); err != nil {
		t.Fatal(err)
	}
	got, _ := db.Get([]byte("key-0000"))
	if string(got) != "val-0000+" {
		t.Fatalf("append: %q", got)
	}
	n, err := db.Incr([]byte("counter"), 41)
	if err != nil || n != 41 {
		t.Fatalf("incr: %d %v", n, err)
	}
	n, err = db.Incr([]byte("counter"), 1)
	if err != nil || n != 42 {
		t.Fatalf("incr: %d %v", n, err)
	}
	if err := db.Delete([]byte("key-0001")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("key-0001")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted: %v", err)
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Keys != 300 || st.VirtualSeconds <= 0 || st.UntrustedBytes == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	db, err := Open(testConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := []byte(fmt.Sprintf("g%d-%03d", g, i))
				if err := db.Set(k, []byte("v")); err != nil {
					errs <- err
					return
				}
				if _, err := db.Get(k); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if db.Keys() != 800 {
		t.Fatalf("Keys = %d", db.Keys())
	}
}

func TestSnapshotRestoreAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)

	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		if err := db.Set([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: must restore from the snapshot.
	db2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Keys() != 120 {
		t.Fatalf("restored keys = %d", db2.Keys())
	}
	for i := 0; i < 120; i++ {
		got, err := db2.Get([]byte(fmt.Sprintf("k%03d", i)))
		if err != nil || string(got) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("key %d: %q %v", i, got, err)
		}
	}
	if err := db2.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotWithoutDirFails(t *testing.T) {
	db, err := Open(testConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Snapshot(); err == nil {
		t.Fatal("snapshot without dir must fail")
	}
}

func TestServeAndDial(t *testing.T) {
	db, err := Open(testConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := db.Serve(ln, ServeOptions{HotCalls: true})
	defer srv.Close()

	c, err := client.Dial(srv.Addr().String(), client.Options{
		Verifier:    db.Enclave(),
		Measurement: Measurement(),
		Secure:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set([]byte("net"), []byte("worked")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get([]byte("net"))
	if err != nil || !bytes.Equal(got, []byte("worked")) {
		t.Fatalf("%q %v", got, err)
	}
	// Local and remote views agree.
	local, err := db.Get([]byte("net"))
	if err != nil || string(local) != "worked" {
		t.Fatalf("local view: %q %v", local, err)
	}
}

func TestAblationConfigs(t *testing.T) {
	cfg := testConfig("")
	cfg.DisableKeyHint = true
	cfg.DisableMACBucket = true
	cfg.DisableExtraHeap = true
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		if err := db.Set(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheConfig(t *testing.T) {
	cfg := testConfig("")
	cfg.CacheBytes = 1 << 20
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Set([]byte("hot"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := db.Get([]byte("hot")); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIncrNotNumeric(t *testing.T) {
	db, err := Open(testConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Set([]byte("s"), []byte("text")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Incr([]byte("s"), 1); !errors.Is(err, ErrNotNumeric) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseInt(t *testing.T) {
	good := map[string]int64{"0": 0, "42": 42, "-7": -7, "+3": 3}
	for s, want := range good {
		n, err := parseInt([]byte(s))
		if err != nil || n != want {
			t.Errorf("parseInt(%q) = %d, %v", s, n, err)
		}
	}
	for _, s := range []string{"", "-", "1a", "a"} {
		if _, err := parseInt([]byte(s)); err == nil {
			t.Errorf("parseInt(%q) accepted", s)
		}
	}
}

func TestCounterNVRAMFileCreated(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := filepath.Glob(filepath.Join(dir, "nvram.bin")); err != nil {
		t.Fatal(err)
	}
}

func TestRangeQueries(t *testing.T) {
	cfg := testConfig("")
	cfg.RangeIndex = true
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 100; i++ {
		if err := db.Set([]byte(fmt.Sprintf("item-%03d", i)), []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	kvs, err := db.Range([]byte("item-020"), []byte("item-030"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 10 {
		t.Fatalf("range: %d pairs, want 10", len(kvs))
	}
	for i, kv := range kvs {
		want := fmt.Sprintf("item-%03d", 20+i)
		if string(kv.Key) != want {
			t.Fatalf("pair %d: %q, want %q (cross-partition merge broken)", i, kv.Key, want)
		}
	}
	// Limit across partitions.
	kvs, err = db.Range(nil, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 5 || string(kvs[0].Key) != "item-000" || string(kvs[4].Key) != "item-004" {
		t.Fatalf("limited range wrong: %d pairs", len(kvs))
	}
	// Disabled by default.
	db2, err := Open(testConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Range(nil, nil, 0); err == nil {
		t.Fatal("range without index must fail")
	}
}

func TestStatsOverNetwork(t *testing.T) {
	db, err := Open(testConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := db.Serve(ln, ServeOptions{})
	defer srv.Close()
	c, err := client.Dial(srv.Addr().String(), client.Options{
		Verifier: db.Enclave(), Measurement: Measurement(), Secure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	lines, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, l := range lines {
		for _, want := range []string{"keys=", "decryptions=", "untrusted_bytes="} {
			if len(l) >= len(want) && l[:len(want)] == want {
				found[want] = true
			}
		}
	}
	if len(found) != 3 {
		t.Fatalf("stats incomplete: %v", lines)
	}
}

func TestLatencyStats(t *testing.T) {
	db, err := Open(testConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		if err := db.Set(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.LatencyP50Us <= 0 || st.LatencyP99Us < st.LatencyP50Us || st.LatencyMeanUs <= 0 {
		t.Fatalf("latency stats wrong: %+v", st)
	}
	// Single-thread ShieldStore ops land in the paper's microsecond range.
	if st.LatencyP50Us > 100 {
		t.Fatalf("p50 = %.1f us, implausibly slow", st.LatencyP50Us)
	}
}
