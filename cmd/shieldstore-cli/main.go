// Command shieldstore-cli is an interactive client for a ShieldStore
// server: it attests the server enclave, establishes the encrypted
// session, and issues commands.
//
//	shieldstore-cli -addr 127.0.0.1:7701 set greeting hello
//	shieldstore-cli -addr 127.0.0.1:7701 get greeting
//	shieldstore-cli -addr 127.0.0.1:7701            # REPL mode
//
// Commands: get K | set K V | del K | append K V | incr K N | stats |
// health | ping | topology (against a shieldstore-ctl supervisor)
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"shieldstore"
	"shieldstore/internal/client"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7701", "server address")
		insecure = flag.Bool("insecure", false, "skip attestation + encryption")
		seed     = flag.Uint64("seed", 0, "deployment seed (must match the server)")
	)
	flag.Parse()

	opts := client.Options{Secure: !*insecure}
	if opts.Secure {
		opts.Verifier = shieldstore.AttestationService(*seed)
		opts.Measurement = shieldstore.Measurement()
	}
	c, err := client.Dial(*addr, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "connect: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()

	if args := flag.Args(); len(args) > 0 {
		if err := runCommand(c, args); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	// REPL mode.
	fmt.Println("shieldstore-cli: connected (attested secure channel). Type 'help'.")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "help":
			fmt.Println("commands: get K | set K V | del K | append K V | incr K N | stats | health | ping | topology | quit")
			continue
		}
		if err := runCommand(c, fields); err != nil {
			fmt.Println("error:", err)
		}
	}
}

func runCommand(c *client.Client, args []string) error {
	switch args[0] {
	case "get":
		if len(args) != 2 {
			return errors.New("usage: get K")
		}
		v, err := c.Get([]byte(args[1]))
		if err != nil {
			return err
		}
		fmt.Printf("%q\n", v)
	case "set":
		if len(args) != 3 {
			return errors.New("usage: set K V")
		}
		if err := c.Set([]byte(args[1]), []byte(args[2])); err != nil {
			return err
		}
		fmt.Println("OK")
	case "del":
		if len(args) != 2 {
			return errors.New("usage: del K")
		}
		if err := c.Delete([]byte(args[1])); err != nil {
			return err
		}
		fmt.Println("OK")
	case "append":
		if len(args) != 3 {
			return errors.New("usage: append K V")
		}
		if err := c.Append([]byte(args[1]), []byte(args[2])); err != nil {
			return err
		}
		fmt.Println("OK")
	case "incr":
		if len(args) != 3 {
			return errors.New("usage: incr K N")
		}
		n, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad delta %q", args[2])
		}
		v, err := c.Incr([]byte(args[1]), n)
		if err != nil {
			return err
		}
		fmt.Println(v)
	case "stats":
		lines, err := c.Stats()
		if err != nil {
			return err
		}
		for _, l := range lines {
			fmt.Println(l)
		}
	case "health":
		lines, err := c.Health()
		if err != nil {
			return err
		}
		for _, l := range lines {
			fmt.Println(l)
		}
	case "ping":
		if err := c.Ping(); err != nil {
			return err
		}
		fmt.Println("PONG")
	case "topology":
		// Against a shieldstore-ctl supervisor (use -insecure: the
		// topology endpoint is plaintext — it holds no secrets).
		version, lines, err := c.Topology()
		if err != nil {
			return err
		}
		fmt.Printf("version=%d\n", version)
		for _, l := range lines {
			fmt.Println(l)
		}
	default:
		return fmt.Errorf("unknown command %q (try help)", args[0])
	}
	return nil
}
