// Command shieldvet runs the ShieldStore enclave-boundary static analyzer
// over the module: trustedmem, nopanic, boundarycost, partition, keyflow,
// and keylife (see DESIGN.md sections 11 and 16).
//
// Usage:
//
//	go run ./cmd/shieldvet ./...
//	go run ./cmd/shieldvet -json ./...
//	go run ./cmd/shieldvet -checkers nopanic,trustedmem ./...
//
// Findings print one per line as file:line:col: [checker] message (or as a
// JSON array with -json). Exit status: 0 clean, 1 findings, 2 load error.
//
//ss:host(analyzer tool; runs outside the simulated machine)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"shieldstore/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	checkers := flag.String("checkers", "", "comma-separated checker subset (default: all)")
	dir := flag.String("C", "", "module directory to analyze (default: module root of the working directory)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: shieldvet [-json] [-checkers a,b] [-C dir] [packages]\n")
		fmt.Fprintf(os.Stderr, "analyzes the whole module; a ./... argument is accepted for familiarity\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	root := *dir
	if root == "" {
		var err error
		root, err = findModuleRoot(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, "shieldvet:", err)
			os.Exit(2)
		}
	}

	prog, err := analysis.Load(analysis.LoadConfig{Dir: root})
	if err != nil {
		fmt.Fprintln(os.Stderr, "shieldvet:", err)
		os.Exit(2)
	}

	var names []string
	if *checkers != "" {
		for _, n := range strings.Split(*checkers, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	findings, err := analysis.Run(prog, names...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shieldvet:", err)
		os.Exit(2)
	}

	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "shieldvet:", err)
			os.Exit(2)
		}
	} else {
		analysis.WriteText(os.Stdout, findings)
		fmt.Fprintf(os.Stderr, "shieldvet: %d package(s), %d finding(s)\n", len(prog.Packages), len(findings))
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}
