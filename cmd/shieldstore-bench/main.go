// Command shieldstore-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	shieldstore-bench -run all                 # every experiment
//	shieldstore-bench -run fig10,fig13         # a subset
//	shieldstore-bench -run table1 -scale 50    # bigger (slower) scale
//	shieldstore-bench -list
//
// Scale divides the paper's data-set sizes and the EPC together (see
// DESIGN.md); -scale 1 is the full paper configuration.
//
//ss:host(experiment driver; runs entirely outside the simulated enclaves and writes results to the host filesystem)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"shieldstore/internal/bench"
)

func main() {
	var (
		run   = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		scale = flag.Int("scale", 0, "scale divisor (default 200; 1 = paper scale)")
		ops   = flag.Int("ops", 0, "measured ops per data point (default 20000)")
		seed  = flag.Int64("seed", 0, "workload seed")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		jsonF = flag.String("json", "", "also write results as JSON to this file ('-' for stdout)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := bench.Config{Scale: *scale, Ops: *ops, Seed: *seed}.Defaults()
	fmt.Printf("# shieldstore-bench scale=%d ops=%d seed=%d\n\n", cfg.Scale, cfg.Ops, cfg.Seed)

	var selected []bench.Experiment
	if *run == "all" {
		selected = bench.All
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	var results []bench.Result
	for _, e := range selected {
		start := time.Now()
		res := e.Run(cfg)
		fmt.Print(res.Format())
		fmt.Printf("  (wall time %.1fs)\n\n", time.Since(start).Seconds())
		results = append(results, res)
	}

	if *jsonF != "" {
		doc := struct {
			Scale   int            `json:"scale"`
			Ops     int            `json:"ops"`
			Seed    int64          `json:"seed"`
			Results []bench.Result `json:"results"`
		}{cfg.Scale, cfg.Ops, cfg.Seed, results}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if *jsonF == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonF, data, 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shieldstore-bench:", err)
	os.Exit(1)
}
