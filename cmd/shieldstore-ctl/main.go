// Command shieldstore-ctl runs the cluster control plane (DESIGN.md
// §17): a supervisor that health-probes every primary and replica,
// detects failures with a consecutive-miss + hysteresis detector, owns
// the fencing-epoch counter, promotes replicas itself, re-protects
// failed-over shards, watches replication lag, and publishes a
// versioned topology over CmdTopology for every cluster client to
// converge on.
//
//	shieldstore-ctl -listen 127.0.0.1:7700 -seed 7 \
//	    -shard 127.0.0.1:7801,127.0.0.1:7802 \
//	    -shard 127.0.0.1:7811,127.0.0.1:7812
//
// Each -shard names one pair as primary[,replica], in the same ring
// order every client uses. -seed must match the data nodes' deployment
// seed (the attestation identity the probes verify). The supervisor
// runs on the untrusted host and holds no key material: a compromised
// supervisor can at worst redirect reads, because fencing epochs are
// enforced inside the data nodes' enclaves.
//
// Query it with: shieldstore-cli -addr <listen> -insecure topology
//
//ss:host(control plane; holds no secrets, enclaves enforce fencing)
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"shieldstore"
	"shieldstore/internal/client"
	"shieldstore/internal/ctl"
)

func mustListen(addr string) net.Listener {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("shieldstore-ctl: listen: %v", err)
	}
	return ln
}

func main() {
	var (
		listen        = flag.String("listen", "127.0.0.1:7700", "topology endpoint listen address")
		probeInterval = flag.Duration("probe-interval", 25*time.Millisecond, "health-probe tick")
		probeTimeout  = flag.Duration("probe-timeout", 250*time.Millisecond, "per-probe deadline (dial+handshake+round trip)")
		downAfter     = flag.Int("down-after", 3, "consecutive probe misses before a node is declared down")
		upAfter       = flag.Int("up-after", 2, "consecutive successes before a down node is trusted again")
		lagAlarm      = flag.Uint64("lag-alarm", 4096, "replication lag (frames) raising the topology alarm flag")
		seed          = flag.Uint64("seed", 0, "deployment enclave key seed (must match the data nodes)")
		insecure      = flag.Bool("insecure", false, "probe without attestation/encryption (testing only)")
	)
	var shards []ctl.ShardConfig
	link := func() client.Options {
		l := client.Options{Secure: !*insecure}
		if !*insecure {
			l.Verifier = shieldstore.AttestationService(*seed)
			l.Measurement = shieldstore.Measurement()
		}
		return l
	}
	flag.Func("shard", "one shard as primary[,replica] (repeatable, ring order)", func(v string) error {
		primary, replica, _ := strings.Cut(v, ",")
		if primary == "" {
			return fmt.Errorf("empty primary in -shard %q", v)
		}
		sc := ctl.ShardConfig{Primary: ctl.Node{Addr: primary}}
		if replica != "" {
			sc.Replica = ctl.Node{Addr: replica}
		}
		shards = append(shards, sc)
		return nil
	})
	flag.Parse()
	if len(shards) == 0 {
		fmt.Fprintln(os.Stderr, "shieldstore-ctl: at least one -shard is required")
		flag.Usage()
		os.Exit(2)
	}
	// Links resolve after flag parsing so -seed/-insecure apply no matter
	// the argument order.
	for i := range shards {
		shards[i].Primary.Link = link()
		if shards[i].Replica.Addr != "" {
			shards[i].Replica.Link = link()
		}
	}

	sup, err := ctl.Start(ctl.Config{
		Shards:        shards,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		DownAfter:     *downAfter,
		UpAfter:       *upAfter,
		LagAlarm:      *lagAlarm,
		Listener:      mustListen(*listen),
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatalf("shieldstore-ctl: %v", err)
	}
	log.Printf("shieldstore-ctl supervising %d shard(s), topology on %s (probe=%v down-after=%d up-after=%d)",
		len(shards), sup.Addr(), *probeInterval, *downAfter, *upAfter)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	sig := <-stop
	log.Printf("%v: shutting down", sig)
	for _, l := range sup.StatsLines() {
		log.Printf("final %s", l)
	}
	for _, l := range sup.Topology().Lines() {
		log.Printf("final %s", l)
	}
	sup.Close()
}
