// Command shieldstore-ycsb drives a live ShieldStore server with the
// paper's YCSB-style workloads (Table 2), measuring wall-clock throughput
// and latency percentiles over the real attested network stack.
//
//	shieldstore-server -listen 127.0.0.1:7701 &
//	shieldstore-ycsb   -addr   127.0.0.1:7701 -workload RD95_Z -ops 100000
//
// Or fully self-contained:
//
//	shieldstore-ycsb -selfhost -workload RD50_U -conns 16
//
//ss:host(benchmark driver; plays the remote client, entirely outside the enclave)
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"shieldstore"
	"shieldstore/internal/client"
	"shieldstore/internal/loadgen"
	"shieldstore/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7701", "server address")
		wl       = flag.String("workload", "RD95_Z", "Table 2 workload name")
		keys     = flag.Int("keys", 10000, "preloaded key count")
		valSize  = flag.Int("value-size", 128, "value size in bytes")
		ops      = flag.Int("ops", 50000, "measured operations")
		conns    = flag.Int("conns", 8, "concurrent connections")
		insecure = flag.Bool("insecure", false, "skip attestation + encryption")
		seed     = flag.Uint64("seed", 0, "deployment seed (must match the server)")
		selfhost = flag.Bool("selfhost", false, "start an in-process server on a random port")
		noLoad   = flag.Bool("skip-preload", false, "assume the key space is already loaded")
		list     = flag.Bool("list", false, "list workload names and exit")
	)
	flag.Parse()

	if *list {
		for _, spec := range workload.Table2 {
			fmt.Printf("%-10s read=%d%% rmw=%d%% dist=%s\n",
				spec.Name, spec.ReadPct, spec.RMWPct, spec.Dist)
		}
		return
	}

	target := *addr
	if *selfhost {
		db, err := shieldstore.Open(shieldstore.Config{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		defer db.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		srv := db.Serve(ln, shieldstore.ServeOptions{HotCalls: true, Insecure: *insecure})
		defer srv.Close()
		target = srv.Addr().String()
		fmt.Printf("self-hosted server on %s\n", target)
	}

	copts := client.Options{Secure: !*insecure}
	if copts.Secure {
		copts.Verifier = shieldstore.AttestationService(*seed)
		copts.Measurement = shieldstore.Measurement()
	}
	res, err := loadgen.Run(loadgen.Options{
		Addr:        target,
		Client:      copts,
		Workload:    *wl,
		Keys:        *keys,
		ValueSize:   *valSize,
		Ops:         *ops,
		Connections: *conns,
		SkipPreload: *noLoad,
		Seed:        int64(*seed) + 1,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println(res.Format())
	for kind, n := range res.ByKind {
		fmt.Printf("  %s: %d\n", kind, n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shieldstore-ycsb:", err)
	os.Exit(1)
}
