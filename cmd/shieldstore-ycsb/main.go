// Command shieldstore-ycsb drives a live ShieldStore server with the
// paper's YCSB-style workloads (Table 2), measuring wall-clock throughput
// and latency percentiles over the real attested network stack.
//
//	shieldstore-server -listen 127.0.0.1:7701 &
//	shieldstore-ycsb   -addr   127.0.0.1:7701 -workload RD95_Z -ops 100000
//
// Or fully self-contained:
//
//	shieldstore-ycsb -selfhost -workload RD50_U -conns 16
//
// Cluster modes — scatter-gather over N shard servers (every shard
// started with the same -seed), or a self-hosted in-process cluster:
//
//	shieldstore-ycsb -cluster 127.0.0.1:7701,127.0.0.1:7702 -seed 7
//	shieldstore-ycsb -selfhost-shards 4 -workload RD95_Z -pipeline 32
//
//ss:host(benchmark driver; plays the remote client, entirely outside the enclave)
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"shieldstore"
	"shieldstore/internal/client"
	"shieldstore/internal/cluster"
	"shieldstore/internal/loadgen"
	"shieldstore/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7701", "server address")
		wl       = flag.String("workload", "RD95_Z", "Table 2 workload name")
		keys     = flag.Int("keys", 10000, "preloaded key count")
		valSize  = flag.Int("value-size", 128, "value size in bytes")
		ops      = flag.Int("ops", 50000, "measured operations")
		conns    = flag.Int("conns", 8, "concurrent connections")
		insecure = flag.Bool("insecure", false, "skip attestation + encryption")
		seed     = flag.Uint64("seed", 0, "deployment seed (must match the server)")
		selfhost = flag.Bool("selfhost", false, "start an in-process server on a random port")
		noLoad   = flag.Bool("skip-preload", false, "assume the key space is already loaded")
		list     = flag.Bool("list", false, "list workload names and exit")
		pipeline = flag.Int("pipeline", 0, "per-worker burst size (cluster: scatter-gather batch)")
		clusterA = flag.String("cluster", "", "comma-separated shard addresses (cluster mode)")
		selfN    = flag.Int("selfhost-shards", 0, "start an in-process N-shard cluster")
		vlogDir  = flag.String("vlog-dir", "", "selfhost: tiered storage value-log directory (empty=off)")
		spillT   = flag.Int("spill-threshold", 0, "selfhost: min value size spilled to the value log (0=default)")
	)
	flag.Parse()

	if *list {
		for _, spec := range workload.Table2 {
			fmt.Printf("%-10s read=%d%% rmw=%d%% dist=%s\n",
				spec.Name, spec.ReadPct, spec.RMWPct, spec.Dist)
		}
		return
	}

	retry := client.RetryPolicy{
		MaxAttempts: 8, Backoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond,
	}

	// Cluster modes: an in-process N-shard harness, or external shard
	// servers (each started with the same -seed).
	var copt *cluster.Options
	switch {
	case *selfN > 0:
		h, err := cluster.StartHarness(cluster.HarnessConfig{
			Shards: *selfN, Secure: !*insecure, Seed: *seed,
			Conns: *conns, Retry: retry, ClusterRetry: retry,
		})
		if err != nil {
			fatal(err)
		}
		defer h.Close()
		opts := h.Options()
		copt = &opts
		fmt.Printf("self-hosted %d-shard cluster on %v\n", *selfN, h.Addrs())
	case *clusterA != "":
		shard := client.Options{Secure: !*insecure, Retry: retry}
		if shard.Secure {
			shard.Verifier = shieldstore.AttestationService(*seed)
			shard.Measurement = shieldstore.Measurement()
		}
		var specs []cluster.ShardSpec
		for _, a := range strings.Split(*clusterA, ",") {
			if a = strings.TrimSpace(a); a != "" {
				specs = append(specs, cluster.ShardSpec{Addr: a, Client: shard})
			}
		}
		copt = &cluster.Options{
			Shards: specs, Conns: *conns, RingSeed: *seed, Retry: retry,
		}
	}
	if copt != nil {
		res, err := loadgen.Run(loadgen.Options{
			Cluster:     copt,
			Workload:    *wl,
			Keys:        *keys,
			ValueSize:   *valSize,
			Ops:         *ops,
			Connections: *conns,
			Pipeline:    *pipeline,
			SkipPreload: *noLoad,
			Seed:        int64(*seed) + 1,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Format())
		for kind, n := range res.ByKind {
			fmt.Printf("  %s: %d\n", kind, n)
		}
		return
	}

	target := *addr
	if *selfhost {
		db, err := shieldstore.Open(shieldstore.Config{Seed: *seed, VLogDir: *vlogDir, SpillThreshold: *spillT})
		if err != nil {
			fatal(err)
		}
		defer db.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		srv := db.Serve(ln, shieldstore.ServeOptions{HotCalls: true, Insecure: *insecure})
		defer srv.Close()
		target = srv.Addr().String()
		fmt.Printf("self-hosted server on %s\n", target)
	}

	copts := client.Options{Secure: !*insecure}
	if copts.Secure {
		copts.Verifier = shieldstore.AttestationService(*seed)
		copts.Measurement = shieldstore.Measurement()
	}
	res, err := loadgen.Run(loadgen.Options{
		Addr:        target,
		Client:      copts,
		Workload:    *wl,
		Keys:        *keys,
		ValueSize:   *valSize,
		Ops:         *ops,
		Connections: *conns,
		Pipeline:    *pipeline,
		SkipPreload: *noLoad,
		Seed:        int64(*seed) + 1,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println(res.Format())
	for kind, n := range res.ByKind {
		fmt.Printf("  %s: %d\n", kind, n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shieldstore-ycsb:", err)
	os.Exit(1)
}
