// Command shieldstore-server runs a networked ShieldStore instance: the
// key-value engine inside the simulated enclave, fronted by the remote-
// attested encrypted TCP protocol of §3.2/§6.4.
//
//	shieldstore-server -listen 127.0.0.1:7701 -partitions 4 \
//	    -snapshot-dir /var/lib/shieldstore -snapshot-every 60s
//
// Clients connect with cmd/shieldstore-cli or the internal/client package.
//
//ss:host(process entry point; the modeled enclave lives behind server.Serve)
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"shieldstore"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7701", "listen address")
		partitions  = flag.Int("partitions", 4, "hash partitions (worker threads)")
		buckets     = flag.Int("buckets", 1<<16, "hash buckets")
		cacheMB     = flag.Int64("cache-mb", 0, "in-enclave plaintext cache (MB, 0=off)")
		snapshotDir = flag.String("snapshot-dir", "", "directory for persistence (empty=in-memory)")
		snapEvery   = flag.Duration("snapshot-every", 60*time.Second, "snapshot period (needs -snapshot-dir)")
		hotcalls    = flag.Bool("hotcalls", true, "use exitless HotCalls for socket syscalls")
		insecure    = flag.Bool("insecure", false, "disable session encryption (testing only)")
		seed        = flag.Uint64("seed", 0, "enclave key seed (0 = default)")
		vlogDir     = flag.String("vlog-dir", "", "tiered storage: encrypted value-log directory (empty=off)")
		spillThresh = flag.Int("spill-threshold", 0, "min value size spilled to the value log (0=default)")
		memBudgetMB = flag.Int64("mem-budget-mb", 0, "in-memory value budget before spilling (MB, 0=always spill eligible values)")
	)
	flag.Parse()

	db, err := shieldstore.Open(shieldstore.Config{
		Partitions:     *partitions,
		Buckets:        *buckets,
		CacheBytes:     *cacheMB << 20,
		SnapshotDir:    *snapshotDir,
		Seed:           *seed,
		VLogDir:        *vlogDir,
		SpillThreshold: *spillThresh,
		MemBudget:      *memBudgetMB << 20,
	})
	if err != nil {
		log.Fatalf("shieldstore: open: %v", err)
	}
	defer db.Close()
	if db.Keys() > 0 {
		log.Printf("restored %d keys from %s", db.Keys(), *snapshotDir)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("shieldstore: listen: %v", err)
	}
	srv := db.Serve(ln, shieldstore.ServeOptions{
		HotCalls: *hotcalls,
		Insecure: *insecure,
	})
	defer srv.Close()
	log.Printf("shieldstore serving on %s (partitions=%d buckets=%d secure=%v hotcalls=%v)",
		srv.Addr(), *partitions, *buckets, !*insecure, *hotcalls)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *snapshotDir != "" {
		ticker = time.NewTicker(*snapEvery)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-tick:
			start := time.Now()
			if err := db.Snapshot(); err != nil {
				log.Printf("snapshot failed: %v", err)
				continue
			}
			log.Printf("snapshot written (%d keys, %.1fms)", db.Keys(),
				float64(time.Since(start).Microseconds())/1000)
		case sig := <-stop:
			log.Printf("%v: shutting down", sig)
			if *snapshotDir != "" {
				if err := db.Snapshot(); err != nil {
					log.Printf("final snapshot failed: %v", err)
				}
			}
			st := db.Stats()
			log.Printf("stats: keys=%d untrusted=%dMB enclave=%dMB decrypts=%d epc_faults=%d",
				st.Keys, st.UntrustedBytes>>20, st.EnclaveBytes>>20, st.Decryptions, st.EPCFaults)
			return
		}
	}
}
