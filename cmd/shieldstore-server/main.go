// Command shieldstore-server runs a networked ShieldStore instance: the
// key-value engine inside the simulated enclave, fronted by the remote-
// attested encrypted TCP protocol of §3.2/§6.4.
//
//	shieldstore-server -listen 127.0.0.1:7701 -partitions 4 \
//	    -snapshot-dir /var/lib/shieldstore -snapshot-every 60s
//
// High-availability pairs (DESIGN.md §15) run one process per role:
//
//	shieldstore-server -role replica -listen 127.0.0.1:7802 -seed 7
//	shieldstore-server -role primary -listen 127.0.0.1:7801 -seed 7 \
//	    -replica-addr 127.0.0.1:7802
//
// Primary and replica must share -seed (the sealing/CMAC identity) or no
// shipped frame will verify. The replica serves reads immediately and
// rejects mutations with StatusFenced until promoted (failover/cutover).
//
// Clients connect with cmd/shieldstore-cli or the internal/client package.
//
//ss:host(process entry point; the modeled enclave lives behind server.Serve)
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"shieldstore"
	"shieldstore/internal/client"
	"shieldstore/internal/core"
	"shieldstore/internal/mem"
	"shieldstore/internal/repl"
	"shieldstore/internal/server"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7701", "listen address")
		partitions  = flag.Int("partitions", 4, "hash partitions (worker threads)")
		buckets     = flag.Int("buckets", 1<<16, "hash buckets")
		cacheMB     = flag.Int64("cache-mb", 0, "in-enclave plaintext cache (MB, 0=off)")
		snapshotDir = flag.String("snapshot-dir", "", "directory for persistence (empty=in-memory)")
		snapEvery   = flag.Duration("snapshot-every", 60*time.Second, "snapshot period (needs -snapshot-dir)")
		hotcalls    = flag.Bool("hotcalls", true, "use exitless HotCalls for socket syscalls")
		insecure    = flag.Bool("insecure", false, "disable session encryption (testing only)")
		seed        = flag.Uint64("seed", 0, "enclave key seed (0 = default)")
		vlogDir     = flag.String("vlog-dir", "", "tiered storage: encrypted value-log directory (empty=off)")
		spillThresh = flag.Int("spill-threshold", 0, "min value size spilled to the value log (0=default)")
		memBudgetMB = flag.Int64("mem-budget-mb", 0, "in-memory value budget before spilling (MB, 0=always spill eligible values)")
		role        = flag.String("role", "standalone", "node role: standalone, primary, or replica (DESIGN.md §15)")
		replicaAddr = flag.String("replica-addr", "", "replica endpoint the journal ships to (role=primary)")
		epoch       = flag.Uint64("epoch", 1, "initial replication fencing epoch")
	)
	flag.Parse()

	switch *role {
	case "standalone":
		// Fall through to the facade path below.
	case "primary", "replica":
		if err := runReplicated(replicatedConfig{
			role:        *role,
			listen:      *listen,
			partitions:  *partitions,
			buckets:     *buckets,
			cacheBytes:  *cacheMB << 20,
			stateDir:    *snapshotDir,
			hotcalls:    *hotcalls,
			insecure:    *insecure,
			seed:        *seed,
			replicaAddr: *replicaAddr,
			epoch:       *epoch,
		}); err != nil {
			log.Fatalf("shieldstore: %v", err)
		}
		return
	default:
		log.Fatalf("shieldstore: unknown -role %q (want standalone, primary, or replica)", *role)
	}

	db, err := shieldstore.Open(shieldstore.Config{
		Partitions:     *partitions,
		Buckets:        *buckets,
		CacheBytes:     *cacheMB << 20,
		SnapshotDir:    *snapshotDir,
		Seed:           *seed,
		VLogDir:        *vlogDir,
		SpillThreshold: *spillThresh,
		MemBudget:      *memBudgetMB << 20,
	})
	if err != nil {
		log.Fatalf("shieldstore: open: %v", err)
	}
	defer db.Close()
	if db.Keys() > 0 {
		log.Printf("restored %d keys from %s", db.Keys(), *snapshotDir)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("shieldstore: listen: %v", err)
	}
	srv := db.Serve(ln, shieldstore.ServeOptions{
		HotCalls: *hotcalls,
		Insecure: *insecure,
	})
	defer srv.Close()
	log.Printf("shieldstore serving on %s (partitions=%d buckets=%d secure=%v hotcalls=%v)",
		srv.Addr(), *partitions, *buckets, !*insecure, *hotcalls)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *snapshotDir != "" {
		ticker = time.NewTicker(*snapEvery)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-tick:
			start := time.Now()
			if err := db.Snapshot(); err != nil {
				log.Printf("snapshot failed: %v", err)
				continue
			}
			log.Printf("snapshot written (%d keys, %.1fms)", db.Keys(),
				float64(time.Since(start).Microseconds())/1000)
		case sig := <-stop:
			log.Printf("%v: shutting down", sig)
			if *snapshotDir != "" {
				if err := db.Snapshot(); err != nil {
					log.Printf("final snapshot failed: %v", err)
				}
			}
			st := db.Stats()
			log.Printf("stats: keys=%d untrusted=%dMB enclave=%dMB decrypts=%d epc_faults=%d",
				st.Keys, st.UntrustedBytes>>20, st.EnclaveBytes>>20, st.Decryptions, st.EPCFaults)
			return
		}
	}
}

// replicatedConfig parameterizes a primary- or replica-role node.
type replicatedConfig struct {
	role        string
	listen      string
	partitions  int
	buckets     int
	cacheBytes  int64
	stateDir    string
	hotcalls    bool
	insecure    bool
	seed        uint64
	replicaAddr string
	epoch       uint64
}

// runReplicated stands up one half of a replication pair (DESIGN.md §15)
// straight on the partitioned engine: a replica wires a repl.Applier into
// the server's Replicate/Promote hooks and stays read-only until
// promoted; a primary tees every partition journal through a
// repl.Shipper so a client ack always implies a replica ack. The frames
// are sealed and MAC-chained end to end, so the replication link needs no
// channel encryption of its own (with -insecure unset it is attested and
// encrypted anyway).
func runReplicated(cfg replicatedConfig) error {
	space := mem.NewSpace(mem.Config{}) // model-default EPC
	enclave := sgx.New(sgx.Config{Space: space, Seed: cfg.seed, Measurement: shieldstore.Measurement()})
	opts := core.Defaults(cfg.buckets)
	opts.CacheBytes = cfg.cacheBytes
	p := core.NewPartitioned(enclave, cfg.partitions, opts)

	scfg := server.Config{
		Engine:       server.CoreEngine{P: p},
		Enclave:      enclave,
		HotCalls:     cfg.hotcalls,
		Secure:       !cfg.insecure,
		Logf:         log.Printf,
		DrainTimeout: time.Second,
		Stats: func() []string {
			st := p.AggregateStats()
			return []string{
				fmt.Sprintf("keys=%d", p.Keys()),
				fmt.Sprintf("virtual_seconds=%.6f", enclave.Model().Seconds(st.Cycles)),
				fmt.Sprintf("repl_shipped=%d", st.Events[sim.CtrReplShipped]),
				fmt.Sprintf("repl_applied=%d", st.Events[sim.CtrReplApplied]),
			}
		},
		Health: func() []string { return core.FormatHealth(p.Health()) },
	}

	// Link builds the dial options for any same-deployment peer this node
	// is told to ship to — the boot-time -replica-addr or a later
	// CmdReplAttach target from a supervisor (cmd/shieldstore-ctl).
	link := func(string) client.Options {
		l := client.Options{Secure: !cfg.insecure}
		if !cfg.insecure {
			// The attestation-service stand-in: quote verification keys
			// derive from the shared deployment seed.
			l.Verifier = shieldstore.AttestationService(cfg.seed)
			l.Measurement = shieldstore.Measurement()
		}
		return l
	}

	var shipper *repl.Shipper
	var applier *repl.Applier
	switch cfg.role {
	case "replica":
		if cfg.stateDir != "" {
			if err := os.MkdirAll(cfg.stateDir, 0o700); err != nil {
				return err
			}
		}
		var err error
		applier, err = repl.NewApplier(p, repl.ApplierOptions{Dir: cfg.stateDir, Epoch: cfg.epoch, Logf: log.Printf})
		if err != nil {
			return err
		}
		scfg.Replicate = applier.Apply
		scfg.Promote = applier.Promote
	case "primary":
		if cfg.replicaAddr == "" {
			return fmt.Errorf("-role primary requires -replica-addr")
		}
		shipper = repl.NewShipper(p, repl.ShipperOptions{
			Addr:  cfg.replicaAddr,
			Link:  link(cfg.replicaAddr),
			Epoch: cfg.epoch,
			Logf:  log.Printf,
		})
		for i := 0; i < p.Parts(); i++ {
			p.SetJournal(i, shipper.Tee(i, nil))
		}
	}

	// The role manager (DESIGN.md §17): decides writability (promoted and
	// not fenced), answers CmdReplAttach so a supervisor can re-protect
	// this node by pointing its stream at a fresh spare, and renders the
	// repl_* stats lines the lag monitor reads.
	node := repl.NewNode(p, shipper, applier, repl.NodeOptions{
		Link:  link,
		Epoch: cfg.epoch,
		Logf:  log.Printf,
	})
	scfg.Writable = node.Writable
	scfg.Attach = node.Attach
	baseStats := scfg.Stats
	scfg.Stats = func() []string { return append(baseStats(), node.StatsLines()...) }

	p.Start()
	if shipper != nil {
		shipper.Start()
	}
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		if shipper != nil {
			shipper.Close()
		}
		p.Stop()
		return err
	}
	srv := server.Serve(ln, scfg)
	extra := ""
	if cfg.role == "primary" {
		extra = " -> " + cfg.replicaAddr
	}
	log.Printf("shieldstore %s serving on %s%s (partitions=%d buckets=%d secure=%v epoch=%d)",
		cfg.role, srv.Addr(), extra, cfg.partitions, cfg.buckets, !cfg.insecure, cfg.epoch)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	sig := <-stop
	log.Printf("%v: shutting down", sig)
	srv.Close()
	node.Close() // shipper (boot-time or attached by a supervisor), then applier
	p.Stop()
	if applier != nil {
		log.Printf("replica watermark=%d epoch=%d writable=%v", applier.Watermark(), applier.Epoch(), applier.Writable())
	}
	return nil
}
