package shieldstore

// This file provides `go test -bench` entry points:
//
//   - micro-benchmarks over the public API (real wall time per operation,
//     plus the simulator's virtual Kop/s as a custom metric), and
//   - one Benchmark per paper table/figure, each regenerating the
//     experiment at a reduced scale (the full tables print via
//     `go run ./cmd/shieldstore-bench -run all`), and
//   - ablation benchmarks for the design choices DESIGN.md calls out
//     (MAC-bucket capacity, partition count, cache budget).
//
// All virtual-time metrics are deterministic; wall-time numbers depend on
// the host as usual.

import (
	"fmt"
	"testing"

	"shieldstore/internal/bench"
	"shieldstore/internal/core"
	"shieldstore/internal/mem"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
	"shieldstore/internal/workload"
)

// --- public-API micro-benchmarks ---

func benchDB(b *testing.B, valSize int) *DB {
	b.Helper()
	db, err := Open(Config{Partitions: 1, Buckets: 4096, EPCBytes: 8 << 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		if err := db.Set(workload.FormatKey(uint64(i)), workload.MakeValue(valSize, uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// reportVirtualKops reports the simulator throughput over the measured
// window (excluding the preload, whose virtual time is in `before`).
func reportVirtualKops(b *testing.B, db *DB, before float64, ops int) {
	b.Helper()
	if d := db.Stats().VirtualSeconds - before; d > 0 {
		b.ReportMetric(float64(ops)/d/1e3, "virtual-Kop/s")
	}
}

func BenchmarkGet16B(b *testing.B)  { benchGet(b, 16) }
func BenchmarkGet512B(b *testing.B) { benchGet(b, 512) }

func benchGet(b *testing.B, valSize int) {
	db := benchDB(b, valSize)
	defer db.Close()
	before := db.Stats().VirtualSeconds
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get(workload.FormatKey(uint64(i % 4096))); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportVirtualKops(b, db, before, b.N)
}

func BenchmarkSet512B(b *testing.B) {
	db := benchDB(b, 512)
	defer db.Close()
	val := workload.MakeValue(512, 7)
	before := db.Stats().VirtualSeconds
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Set(workload.FormatKey(uint64(i%4096)), val); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportVirtualKops(b, db, before, b.N)
}

func BenchmarkAppend(b *testing.B) {
	db := benchDB(b, 16)
	defer db.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rotate keys so values stay small.
		if err := db.Append(workload.FormatKey(uint64(i%4096)), []byte("x")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIncr(b *testing.B) {
	db := benchDB(b, 16)
	defer db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Incr([]byte("bench-counter"), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- per-table / per-figure regeneration benchmarks ---

// benchCfg is small enough to keep `go test -bench=.` in CI territory
// while preserving the working-set/EPC ratios.
func benchCfg() bench.Config {
	return bench.Config{Scale: 1000, Ops: 3000, Seed: 42}
}

func benchExperiment(b *testing.B, id string) {
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := benchCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := e.Run(cfg)
		if len(res.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)  { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)  { benchExperiment(b, "fig19") }

// BenchmarkBatchExp regenerates the batch-amortization table (the full
// sweep prints via `go run ./cmd/shieldstore-bench -run batch`).
func BenchmarkBatchExp(b *testing.B) { benchExperiment(b, "batch") }

// BenchmarkBatch sweeps DB.Batch size under uniform and zipfian set
// streams over the preloaded key space. batch=1 is the plain per-op
// loop; compare virtual-Kop/s across sub-benchmarks.
func BenchmarkBatch(b *testing.B) {
	for _, dist := range []struct {
		name string
		d    workload.Distribution
	}{{"uniform", workload.Uniform}, {"zipf99", workload.Zipf99}} {
		for _, size := range []int{1, 8, 32, 128} {
			b.Run(fmt.Sprintf("%s/batch%d", dist.name, size), func(b *testing.B) {
				db := benchDB(b, 128)
				defer db.Close()
				gen := workload.NewGen(workload.Spec{Name: "SET100", ReadPct: 0, Dist: dist.d}, 4096, 42)
				val := workload.MakeValue(128, 9)
				before := db.Stats().VirtualSeconds
				b.ReportAllocs()
				b.ResetTimer()
				if size == 1 {
					for i := 0; i < b.N; i++ {
						if err := db.Set(workload.FormatKey(gen.Next().Key), val); err != nil {
							b.Fatal(err)
						}
					}
				} else {
					ops := make([]BatchOp, size)
					for i := 0; i < b.N; i += size {
						n := min(size, b.N-i)
						for j := 0; j < n; j++ {
							ops[j] = BatchOp{Kind: BatchSet, Key: workload.FormatKey(gen.Next().Key), Value: val}
						}
						for _, r := range db.Batch(ops[:n]) {
							if r.Err != nil {
								b.Fatal(r.Err)
							}
						}
					}
				}
				b.StopTimer()
				reportVirtualKops(b, db, before, b.N)
			})
		}
	}
}

// --- ablation benchmarks ---

// ablationStore builds a single-partition engine on a fresh machine.
func ablationStore(b *testing.B, mod func(*core.Options)) (*core.Store, *sim.Meter) {
	b.Helper()
	space := mem.NewSpace(mem.Config{EPCBytes: 2 << 20})
	e := sgx.New(sgx.Config{Space: space, Seed: 5})
	opts := core.Defaults(2048)
	if mod != nil {
		mod(&opts)
	}
	s := core.New(e, nil, opts)
	loader := sim.NewMeter(e.Model())
	for i := 0; i < 8192; i++ {
		if err := s.Set(loader, workload.FormatKey(uint64(i)), workload.MakeValue(64, uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
	return s, sim.NewMeter(e.Model())
}

// BenchmarkAblationMACBucketCap sweeps the MAC-bucket node capacity (the
// paper fixes 30; chains of 4 here make small caps chain-heavy).
func BenchmarkAblationMACBucketCap(b *testing.B) {
	for _, cap := range []int{2, 10, 30, 120} {
		b.Run(fmt.Sprintf("cap%d", cap), func(b *testing.B) {
			s, m := ablationStore(b, func(o *core.Options) { o.MACBucketCap = cap })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Get(m, workload.FormatKey(uint64(i%8192))); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(m.Cycles())/float64(b.N), "virtual-cycles/op")
			}
		})
	}
}

// BenchmarkAblationCacheBudget sweeps the EPC plaintext cache size.
func BenchmarkAblationCacheBudget(b *testing.B) {
	for _, budget := range []int64{0, 256 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("cache%dKB", budget>>10), func(b *testing.B) {
			s, m := ablationStore(b, func(o *core.Options) { o.CacheBytes = budget })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Zipf-ish: hammer a hot subset.
				if _, err := s.Get(m, workload.FormatKey(uint64(i%128))); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(m.Cycles())/float64(b.N), "virtual-cycles/op")
			}
		})
	}
}

// BenchmarkAblationPartitions sweeps the partition count at fixed total
// buckets, reporting the parallel virtual throughput.
func BenchmarkAblationPartitions(b *testing.B) {
	for _, parts := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parts%d", parts), func(b *testing.B) {
			space := mem.NewSpace(mem.Config{EPCBytes: 4 << 20})
			e := sgx.New(sgx.Config{Space: space, Seed: 5})
			p := core.NewPartitioned(e, parts, core.Defaults(4096))
			loader := sim.NewMeter(e.Model())
			for i := 0; i < 8192; i++ {
				key := workload.FormatKey(uint64(i))
				if err := p.Part(p.Route(loader, key)).Set(loader, key, workload.MakeValue(64, uint64(i))); err != nil {
					b.Fatal(err)
				}
			}
			p.ResetMeters()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := workload.FormatKey(uint64(i % 8192))
				part := p.Route(loader, key)
				if _, err := p.Part(part).Get(p.Meter(part), key); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if p.MaxCycles() > 0 {
				model := e.Model()
				b.ReportMetric(sim.KopsPerSec(sim.Throughput(model, uint64(b.N), p.MaxCycles())), "virtual-Kop/s")
			}
		})
	}
}

// BenchmarkAblationIntegrity compares the paper's flattened in-enclave
// MAC hashes (§4.3) against the full Merkle tree the paper rejects. The
// flattened design should win: tree verification walks log2(buckets)
// levels of keyed hashing per operation.
func BenchmarkAblationIntegrity(b *testing.B) {
	for _, mode := range []string{"flat", "merkle"} {
		b.Run(mode, func(b *testing.B) {
			s, m := ablationStore(b, func(o *core.Options) {
				o.Buckets = 1 << 14 // tall tree: 15 levels
				o.MACHashes = 1 << 14
				o.MerkleTree = mode == "merkle"
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Get(m, workload.FormatKey(uint64(i%8192))); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(m.Cycles())/float64(b.N), "virtual-cycles/op")
			}
		})
	}
}

// BenchmarkAblationKeyHint isolates the §5.4 two-step search cost on
// purpose-built long chains.
func BenchmarkAblationKeyHint(b *testing.B) {
	for _, hint := range []bool{false, true} {
		b.Run(fmt.Sprintf("hint=%v", hint), func(b *testing.B) {
			s, m := ablationStore(b, func(o *core.Options) {
				o.Buckets = 256 // chains of ~32
				o.MACHashes = 256
				o.KeyHint = hint
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Get(m, workload.FormatKey(uint64(i%8192))); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(m.Events(sim.CtrDecrypt))/float64(b.N), "decrypts/op")
			}
		})
	}
}
