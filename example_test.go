package shieldstore_test

import (
	"fmt"
	"log"

	"shieldstore"
)

// The zero configuration opens an in-memory store with the paper's
// ShieldOpt defaults: hash table in untrusted memory, every entry
// encrypted and integrity-protected, all §5 optimizations on.
func Example() {
	db, err := shieldstore.Open(shieldstore.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.Set([]byte("greeting"), []byte("hello enclave")); err != nil {
		log.Fatal(err)
	}
	v, err := db.Get([]byte("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(v))
	// Output: hello enclave
}

// Append and Incr run inside the enclave on the decrypted value — the
// server-side computations that client-side encryption cannot offer.
func ExampleDB_Incr() {
	db, err := shieldstore.Open(shieldstore.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 3; i++ {
		if _, err := db.Incr([]byte("visits"), 1); err != nil {
			log.Fatal(err)
		}
	}
	n, _ := db.Incr([]byte("visits"), 0)
	fmt.Println(n)
	// Output: 3
}

// Range queries require the opt-in enclave-resident ordered index
// (Config.RangeIndex) and return pairs in key order across partitions.
func ExampleDB_Range() {
	db, err := shieldstore.Open(shieldstore.Config{Seed: 1, RangeIndex: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for _, k := range []string{"b", "d", "a", "c"} {
		if err := db.Set([]byte("item:"+k), []byte("v-"+k)); err != nil {
			log.Fatal(err)
		}
	}
	kvs, err := db.Range([]byte("item:a"), []byte("item:d"), 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, kv := range kvs {
		fmt.Printf("%s=%s\n", kv.Key, kv.Value)
	}
	// Output:
	// item:a=v-a
	// item:b=v-b
	// item:c=v-c
}

// VerifyIntegrity audits every bucket set and entry in untrusted memory
// against the in-enclave MAC hashes — the full §4.3 check on demand.
func ExampleDB_VerifyIntegrity() {
	db, err := shieldstore.Open(shieldstore.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	_ = db.Set([]byte("k"), []byte("v"))
	if err := db.VerifyIntegrity(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("audit passed")
	// Output: audit passed
}
