module shieldstore

go 1.24
