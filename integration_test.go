package shieldstore

// integration_test.go exercises the whole system the way a deployment
// would: networked clients against a persistent, range-indexed store,
// across server restarts and under attack.

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"shieldstore/internal/client"
	"shieldstore/internal/workload"
)

func TestFullLifecycle(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Partitions:  4,
		Buckets:     1024,
		EPCBytes:    16 << 20,
		Seed:        2025,
		SnapshotDir: dir,
		RangeIndex:  true,
	}

	// --- Phase 1: boot, serve concurrent attested clients ---
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := db.Serve(ln, ServeOptions{HotCalls: true})

	const clients = 4
	const keysPer = 100
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cid := 0; cid < clients; cid++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			c, err := client.Dial(srv.Addr().String(), client.Options{
				Verifier:    db.Enclave(),
				Measurement: Measurement(),
				Secure:      true,
			})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < keysPer; i++ {
				k := []byte(fmt.Sprintf("data:c%d:%03d", cid, i))
				if err := c.Set(k, workload.MakeValue(64, uint64(cid*1000+i))); err != nil {
					errs <- err
					return
				}
			}
			if _, err := c.Incr([]byte("global:ops"), keysPer); err != nil {
				errs <- err
			}
		}(cid)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Batch read through the network.
	c, err := client.Dial(srv.Addr().String(), client.Options{
		Verifier: db.Enclave(), Measurement: Measurement(), Secure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := c.MGet([]byte("data:c0:000"), []byte("data:c3:099"), []byte("absent"))
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] == nil || vals[1] == nil || vals[2] != nil {
		t.Fatalf("mget wrong: %v", vals)
	}
	c.Close()

	n, err := db.Incr([]byte("global:ops"), 0)
	if err != nil || n != clients*keysPer {
		t.Fatalf("global counter = %d, %v", n, err)
	}

	// Range over one client's namespace.
	kvs, err := db.Range([]byte("data:c2:"), []byte("data:c3:"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != keysPer {
		t.Fatalf("range: %d keys, want %d", len(kvs), keysPer)
	}

	// --- Phase 2: snapshot, shutdown, restart, verify ---
	if err := db.Snapshot(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Keys() != clients*keysPer+1 {
		t.Fatalf("restored keys = %d, want %d", db2.Keys(), clients*keysPer+1)
	}
	if err := db2.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	got, err := db2.Get([]byte("data:c1:042"))
	if err != nil || !bytes.Equal(got, workload.MakeValue(64, 1042)) {
		t.Fatalf("restored value wrong: %v", err)
	}
	// Range index rebuilt through restore.
	kvs, err = db2.Range([]byte("data:c2:"), []byte("data:c3:"), 3)
	if err != nil || len(kvs) != 3 {
		t.Fatalf("restored range: %d, %v", len(kvs), err)
	}

	// --- Phase 3: host attacks the snapshot files ---
	if err := db2.Set([]byte("post"), []byte("restart")); err != nil {
		t.Fatal(err)
	}
	if err := db2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	db2.Close()

	// Corrupt one partition's data file.
	files, _ := filepath.Glob(filepath.Join(dir, "part-*", "snapshot.data"))
	if len(files) == 0 {
		t.Fatal("no snapshot files")
	}
	data, _ := os.ReadFile(files[0])
	data[len(data)/3] ^= 0x10
	if err := os.WriteFile(files[0], data, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(cfg); err == nil {
		t.Fatal("corrupted snapshot opened without error")
	}
}

func TestWorkloadSoak(t *testing.T) {
	// A long mixed workload against the public API with a model check.
	db, err := Open(Config{Partitions: 2, Buckets: 512, EPCBytes: 8 << 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	ref := map[string][]byte{}
	spec, _ := workload.ByName("RD50_Z")
	gen := workload.NewGen(spec, 300, 17)
	for i := 0; i < 8000; i++ {
		op := gen.Next()
		key := workload.FormatKey(op.Key)
		switch op.Kind {
		case workload.Read:
			got, err := db.Get(key)
			want, ok := ref[string(key)]
			if !ok {
				if !errors.Is(err, ErrNotFound) {
					t.Fatalf("op %d: %v", i, err)
				}
				continue
			}
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("op %d: key %s mismatch (%v)", i, key, err)
			}
		default:
			val := workload.MakeValue(32, op.Key^uint64(i))
			if err := db.Set(key, val); err != nil {
				t.Fatal(err)
			}
			ref[string(key)] = val
		}
	}
	if db.Keys() != len(ref) {
		t.Fatalf("Keys = %d, ref = %d", db.Keys(), len(ref))
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Decryptions == 0 || st.VirtualSeconds <= 0 {
		t.Fatalf("stats look dead: %+v", st)
	}
}
